#include "perception/study.h"

#include <algorithm>

#include "baselines/m4.h"
#include "baselines/oversmooth.h"
#include "baselines/paa.h"
#include "baselines/visvalingam.h"
#include "common/macros.h"
#include "core/smooth.h"
#include "stats/normalize.h"
#include "window/preaggregate.h"

namespace asap {
namespace perception {

namespace {
// The paper renders all study plots at 800 pixels (§5.1).
constexpr size_t kStudyResolution = 800;
}  // namespace

const char* TechniqueName(Technique technique) {
  switch (technique) {
    case Technique::kAsap:
      return "ASAP";
    case Technique::kOriginal:
      return "Original";
    case Technique::kM4:
      return "M4";
    case Technique::kSimplification:
      return "simp";
    case Technique::kPaa800:
      return "PAA800";
    case Technique::kPaa100:
      return "PAA100";
    case Technique::kOversmooth:
      return "Oversmooth";
  }
  return "Unknown";
}

std::vector<Technique> AllTechniques() {
  return {Technique::kAsap,   Technique::kOriginal, Technique::kM4,
          Technique::kSimplification, Technique::kPaa800,
          Technique::kPaa100, Technique::kOversmooth};
}

std::vector<Technique> PreferenceTechniques() {
  return {Technique::kOriginal, Technique::kAsap, Technique::kPaa100,
          Technique::kOversmooth};
}

Result<BuiltVisualization> BuildVisualization(const datasets::Dataset& dataset,
                                              Technique technique) {
  // The study displays z-scores (paper Fig. 1 footnote).
  const std::vector<double> raw = stats::ZScore(dataset.series.values());
  if (raw.size() < 8) {
    return Status::InvalidArgument("dataset too small for the study");
  }

  BuiltVisualization vis;
  vis.technique = technique;
  vis.x_max = static_cast<double>(raw.size() - 1);

  // A trailing SMA's i-th output summarizes raw positions
  // [i*ppp, i*ppp + w*ppp); charts draw moving averages centered, so
  // the study assigns each smoothed point its window-center position.
  // Without this, a wide window visually shifts anomalies left by w/2
  // and the observer blames the wrong region.
  const auto centered_positions = [](size_t count, size_t window,
                                     size_t points_per_pixel) {
    std::vector<double> xs(count);
    const double half_span =
        0.5 * static_cast<double>(window * points_per_pixel - 1);
    for (size_t i = 0; i < count; ++i) {
      xs[i] = static_cast<double>(i * points_per_pixel) + half_span;
    }
    return xs;
  };

  switch (technique) {
    case Technique::kOriginal: {
      vis.displayed = raw;
      return vis;
    }
    case Technique::kAsap: {
      SmoothOptions options;
      options.resolution = kStudyResolution;
      ASAP_ASSIGN_OR_RETURN(SmoothingResult result, Smooth(raw, options));
      vis.x_positions = centered_positions(result.series.size(),
                                           result.window,
                                           result.points_per_pixel);
      vis.displayed = std::move(result.series);
      return vis;
    }
    case Technique::kOversmooth: {
      // Oversmooth operates on the same preaggregated series ASAP sees.
      const window::Preaggregated agg =
          window::Preaggregate(raw, kStudyResolution);
      vis.displayed = baselines::Oversmooth(agg.series);
      vis.x_positions = centered_positions(
          vis.displayed.size(),
          baselines::OversmoothWindow(agg.series.size()),
          agg.points_per_pixel);
      return vis;
    }
    case Technique::kM4: {
      const baselines::ReducedSeries reduced =
          baselines::M4Reduce(raw, kStudyResolution);
      vis.displayed = reduced.value;
      vis.x_positions = reduced.index;
      return vis;
    }
    case Technique::kSimplification: {
      const baselines::ReducedSeries reduced =
          baselines::VisvalingamSimplify(raw, kStudyResolution);
      vis.displayed = reduced.value;
      vis.x_positions = reduced.index;
      return vis;
    }
    case Technique::kPaa800: {
      const baselines::ReducedSeries reduced = baselines::PaaReduce(raw, 800);
      vis.displayed = reduced.value;
      vis.x_positions = reduced.index;
      return vis;
    }
    case Technique::kPaa100: {
      const baselines::ReducedSeries reduced = baselines::PaaReduce(raw, 100);
      vis.displayed = reduced.value;
      vis.x_positions = reduced.index;
      return vis;
    }
  }
  return Status::InvalidArgument("unknown technique");
}

Saliency ScoreVisualization(const BuiltVisualization& vis,
                            const ObserverParams& params) {
  if (!vis.x_positions.empty()) {
    return ScoreIndexedSeries(vis.x_positions, vis.displayed, vis.x_max,
                              params);
  }
  return ScoreDenseSeries(vis.displayed, params);
}

std::vector<StudyResult> RunAnomalyStudy(size_t trials, uint64_t seed,
                                         const ObserverParams& params) {
  std::vector<StudyResult> results;
  uint64_t cell_seed = seed;
  for (const std::string& name : datasets::UserStudyDatasetNames()) {
    const datasets::Dataset dataset =
        datasets::MakeByName(name).ValueOrDie();
    ASAP_CHECK(dataset.info.HasAnomaly());
    for (Technique technique : AllTechniques()) {
      const BuiltVisualization vis =
          BuildVisualization(dataset, technique).ValueOrDie();
      const Saliency saliency = ScoreVisualization(vis, params);
      StudyResult result;
      result.dataset = name;
      result.technique = technique;
      result.cell = RunTrials(saliency, dataset.info.anomaly_region, trials,
                              ++cell_seed, params);
      results.push_back(std::move(result));
    }
  }
  return results;
}

std::vector<PreferenceResult> RunPreferenceStudy(
    size_t trials, uint64_t seed, const ObserverParams& params) {
  std::vector<PreferenceResult> results;
  Pcg32 rng(seed, 0x70726566657265ULL);
  for (const std::string& name : datasets::UserStudyDatasetNames()) {
    const datasets::Dataset dataset =
        datasets::MakeByName(name).ValueOrDie();
    ASAP_CHECK(dataset.info.HasAnomaly());
    const int true_region = dataset.info.anomaly_region;

    PreferenceResult pref;
    pref.dataset = name;
    pref.techniques = PreferenceTechniques();
    pref.preference_percent.assign(pref.techniques.size(), 0.0);

    // Per-technique margin: score of the true region minus the best
    // competing region (how unambiguously the plot highlights the
    // described anomaly).
    std::vector<double> margins;
    for (Technique technique : pref.techniques) {
      const BuiltVisualization vis =
          BuildVisualization(dataset, technique).ValueOrDie();
      const Saliency saliency = ScoreVisualization(vis, params);
      double total = 0.0;
      for (double s : saliency.region_scores) {
        total += s;
      }
      double truth = saliency.region_scores[true_region - 1];
      double best_other = 0.0;
      for (int r = 0; r < 5; ++r) {
        if (r != true_region - 1) {
          best_other = std::max(best_other, saliency.region_scores[r]);
        }
      }
      margins.push_back(total > 0.0 ? (truth - best_other) / total : 0.0);
    }

    for (size_t t = 0; t < trials; ++t) {
      size_t arg = 0;
      double best = -1e300;
      for (size_t i = 0; i < margins.size(); ++i) {
        const double noisy =
            margins[i] + rng.Gaussian(0.0, params.decision_noise);
        if (noisy > best) {
          best = noisy;
          arg = i;
        }
      }
      pref.preference_percent[arg] += 100.0 / static_cast<double>(trials);
    }
    results.push_back(std::move(pref));
  }
  return results;
}

}  // namespace perception
}  // namespace asap
