// Simulated-observer model for the anomaly-identification task
// (paper §5.1).
//
// SUBSTITUTION (DESIGN.md §4): the paper measures 700 Mechanical Turk
// workers; offline we simulate the mechanism their accuracy depends
// on. The observer looks at the *rendered plot* (the same raster a
// human sees), splits it into the study's five regions, and scores
// each region by how far the drawn line deviates from the plot's
// typical behavior, discounted by visual clutter (ink density +
// line jitter). Monte-Carlo observer noise then turns scores into
// accuracy percentages and response times.
//
// The model is intentionally simple and fixed across techniques: every
// visualization is rendered to the same canvas and scored by the same
// rules, so differences between techniques come from the plots alone.

#ifndef ASAP_PERCEPTION_OBSERVER_H_
#define ASAP_PERCEPTION_OBSERVER_H_

#include <array>
#include <cstddef>
#include <vector>

#include "common/random.h"
#include "render/rasterize.h"

namespace asap {
namespace perception {

/// Tunable constants of the observer (defaults calibrated so the
/// paper's orderings reproduce; see bench_fig6_user_study).
struct ObserverParams {
  size_t canvas_width = 800;
  size_t canvas_height = 240;
  /// Chunks per region when scanning for localized deviations.
  size_t chunks_per_region = 8;
  /// Weight of spread (extent) deviations vs. level deviations.
  double spread_weight = 0.6;
  /// Weight of ink density in the clutter term.
  double ink_weight = 2.2;
  /// Weight of line jitter in the clutter term.
  double jitter_weight = 1.0;
  /// Softening constant added to clutter in the denominator.
  double clutter_offset = 0.25;
  /// Standard deviation of observer noise on normalized scores.
  double decision_noise = 0.16;
  /// Response-time model: base + scale * exp(-margin / margin_scale).
  double time_base_seconds = 6.0;
  double time_scale_seconds = 26.0;
  double margin_scale = 0.10;
};

/// Saliency of the five study regions (higher = more eye-catching) and
/// the plot-wide clutter that produced it.
struct Saliency {
  std::array<double, 5> region_scores{};
  double clutter = 0.0;
};

/// Renders `displayed` (a dense series spanning the full time range)
/// and scores the five regions.
Saliency ScoreDenseSeries(const std::vector<double>& displayed,
                          const ObserverParams& params = {});

/// Same, for a series with explicit x-positions in [0, x_max]
/// (reduced representations such as M4 / simplification output).
Saliency ScoreIndexedSeries(const std::vector<double>& xs,
                            const std::vector<double>& ys, double x_max,
                            const ObserverParams& params = {});

/// Scores an already-rasterized plot via its column statistics.
Saliency ScoreColumnStats(const render::ColumnStats& stats,
                          const ObserverParams& params);

/// One simulated trial: noisy argmax over region scores.
struct TrialOutcome {
  int chosen_region = 0;  // 1-based
  bool correct = false;
  double response_seconds = 0.0;
};

TrialOutcome SimulateTrial(const Saliency& saliency, int true_region,
                           Pcg32* rng, const ObserverParams& params = {});

/// Runs `trials` simulated observers; returns (accuracy %, mean
/// response seconds).
struct StudyCell {
  double accuracy_percent = 0.0;
  double mean_response_seconds = 0.0;
};

StudyCell RunTrials(const Saliency& saliency, int true_region, size_t trials,
                    uint64_t seed, const ObserverParams& params = {});

}  // namespace perception
}  // namespace asap

#endif  // ASAP_PERCEPTION_OBSERVER_H_
