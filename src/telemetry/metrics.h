// Process-wide metrics layer: lock-free instruments behind a registry.
//
// Design goals, in priority order:
//   1. Hot-path writes must be cheap enough for the wire event loops
//      and shard workers (~tens of millions of records/s): Counter and
//      Histogram writes are relaxed atomic RMWs on per-thread-sharded
//      cache lines; no locks, no allocation, no branches beyond the
//      global kill switch.
//   2. Reads fold on demand: Value()/Snapshot() walk the shards, so a
//      scrape costs the reader, never the writer.
//   3. Fixed bucket layouts so histogram snapshots merge associatively
//      — per-loop instruments can be summed into a server-wide view in
//      any order with the same result, and quantile reads are
//      allocation-free (the snapshot lives on the stack).
//
// Instruments are owned by a MetricsRegistry and handed out as
// shared_ptrs keyed by (name, sorted label set). Components default to
// a private registry (exact counts per instance, as the tests demand)
// and accept an injected one so a process can aggregate everything
// into a single scrapeable surface; MetricsRegistry::Global() serves
// true process singletons such as the TaskPool.

#ifndef ASAP_TELEMETRY_METRICS_H_
#define ASAP_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace asap {
namespace telemetry {

/// Global kill switch checked (relaxed) by every instrument write.
/// Exists so bench_wire_ingest can price the instrumentation: the
/// overhead row compares enabled vs disabled drains. Defaults to on.
void SetTelemetryEnabled(bool enabled);
bool TelemetryEnabled();

namespace internal {
extern std::atomic<bool> g_enabled;
inline bool Enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}
/// Stable small index for the calling thread, used to pick a shard
/// slot. Assigned round-robin on first use per thread.
unsigned ThreadSlot();
}  // namespace internal

// ---------------------------------------------------------------------------
// Counter

/// Monotonic counter. Writes are relaxed fetch_adds on one of
/// kShards cache-line-padded slots chosen by thread identity, so
/// concurrent writers on different cores do not bounce a line.
class Counter {
 public:
  static constexpr unsigned kShards = 8;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    if (!internal::Enabled()) return;
    shards_[internal::ThreadSlot() & (kShards - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Folds the shards. Exact once writers have quiesced; a live read
  /// is a consistent-enough sum for monitoring (each shard is atomic).
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Slot& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  Slot shards_[kShards];
};

// ---------------------------------------------------------------------------
// Gauge

/// Last-written value (double). A gauge is a point sample, not a sum,
/// so it is a single atomic cell: Set() stores, Add() CAS-loops.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) {
    if (!internal::Enabled()) return;
    bits_.store(ToBits(value), std::memory_order_relaxed);
  }

  void Add(double delta) {
    if (!internal::Enabled()) return;
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, ToBits(FromBits(cur) + delta),
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
    }
  }

  double Value() const {
    return FromBits(bits_.load(std::memory_order_relaxed));
  }

 private:
  static uint64_t ToBits(double d) {
    uint64_t u;
    static_assert(sizeof(u) == sizeof(d), "double must be 64-bit");
    __builtin_memcpy(&u, &d, sizeof(u));
    return u;
  }
  static double FromBits(uint64_t u) {
    double d;
    __builtin_memcpy(&d, &u, sizeof(d));
    return d;
  }
  std::atomic<uint64_t> bits_{0};
};

// ---------------------------------------------------------------------------
// LatencyHistogram

/// HDR-style log-linear histogram over uint64 values (nanoseconds by
/// convention; MetricSpec::scale says how to render them).
///
/// Layout: values < 16 land in 16 exact unit buckets; above that each
/// base-2 octave [2^e, 2^(e+1)) splits into 16 sub-buckets, giving a
/// worst-case relative error of 1/16 (6.25%) on any quantile. The
/// layout is fixed at compile time, so two snapshots merge by adding
/// bucket counts — associative and commutative — and every power of
/// two (hence every power of four) is an exact bucket boundary, which
/// lets the wire tier reconstruct its legacy log-4 batch-size
/// histogram from CountAtMost() without error.
class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 4;               // 16 sub-buckets/octave
  static constexpr unsigned kSubBuckets = 1u << kSubBits;
  static constexpr unsigned kMaxExponent = 40;          // ~1100s in nanos
  static constexpr unsigned kBucketCount =
      kSubBuckets + (kMaxExponent - kSubBits) * kSubBuckets;  // 592

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Bucket index for a value. Exact below 16; log-linear above.
  static unsigned BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<unsigned>(v);
    unsigned e = 63u - static_cast<unsigned>(__builtin_clzll(v));
    if (e >= kMaxExponent) {
      e = kMaxExponent - 1;
      // Clamp into the top octave's last sub-bucket.
      return kBucketCount - 1;
    }
    unsigned sub = static_cast<unsigned>(v >> (e - kSubBits)) & (kSubBuckets - 1);
    return kSubBuckets + (e - kSubBits) * kSubBuckets + sub;
  }

  /// Inclusive lower bound of a bucket (its smallest member).
  static uint64_t BucketLowerBound(unsigned idx) {
    if (idx < kSubBuckets) return idx;
    unsigned e = kSubBits + (idx - kSubBuckets) / kSubBuckets;
    unsigned sub = (idx - kSubBuckets) % kSubBuckets;
    return (uint64_t{1} << e) + (uint64_t{sub} << (e - kSubBits));
  }

  /// Representative value reported for a bucket: midpoint of its range
  /// (exact value for the unit buckets).
  static uint64_t BucketMidpoint(unsigned idx) {
    if (idx < kSubBuckets) return idx;
    uint64_t lo = BucketLowerBound(idx);
    unsigned e = kSubBits + (idx - kSubBuckets) / kSubBuckets;
    uint64_t width = uint64_t{1} << (e - kSubBits);
    return lo + width / 2;
  }

  void Record(uint64_t value) {
    if (!internal::Enabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    UpdateMax(value);
  }

  /// Point-in-time copy. Stack-sized (no allocation) so scrapes and
  /// quantile reads never touch the heap.
  struct Snapshot {
    uint64_t counts[kBucketCount] = {0};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;

    /// Adds `other` in. Bucket layouts are identical by construction,
    /// so this is associative and commutative.
    void Merge(const Snapshot& other) {
      for (unsigned i = 0; i < kBucketCount; ++i) counts[i] += other.counts[i];
      count += other.count;
      sum += other.sum;
      if (other.max > max) max = other.max;
    }

    /// Value at quantile q in [0,1]; bucket-midpoint estimate, so the
    /// relative error is bounded by half a sub-bucket (<= 1/16).
    /// Returns 0 on an empty snapshot.
    uint64_t Quantile(double q) const {
      if (count == 0) return 0;
      if (q < 0) q = 0;
      if (q > 1) q = 1;
      // Rank of the q-th element, 1-based, clamped to [1, count].
      uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
      if (rank < 1) rank = 1;
      if (rank > count) rank = count;
      uint64_t seen = 0;
      for (unsigned i = 0; i < kBucketCount; ++i) {
        seen += counts[i];
        if (seen >= rank) return BucketMidpoint(i);
      }
      return max;
    }

    /// Number of recorded values <= `threshold`. Exact whenever
    /// `threshold + 1` is a bucket lower bound (all powers of two are).
    uint64_t CountAtMost(uint64_t threshold) const {
      uint64_t total = 0;
      for (unsigned i = 0; i < kBucketCount; ++i) {
        if (BucketLowerBound(i) > threshold) break;
        total += counts[i];
      }
      return total;
    }

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  Snapshot TakeSnapshot() const {
    Snapshot s;
    for (unsigned i = 0; i < kBucketCount; ++i) {
      s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

 private:
  void UpdateMax(uint64_t value) {
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> buckets_[kBucketCount] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// ---------------------------------------------------------------------------
// ScopedTimer

/// Records the enclosed scope's wall time into a histogram on
/// destruction. Null-tolerant so call sites can keep a single code
/// path whether or not they were handed an instrument.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist) : hist_(hist) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Record(watch_.ElapsedNanos());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  Stopwatch watch_;
};

// ---------------------------------------------------------------------------
// MetricsRegistry

/// Identity + rendering hints for one instrument.
struct MetricSpec {
  std::string name;  // e.g. "asap_wire_records_total"
  std::string help;
  std::vector<std::pair<std::string, std::string>> labels;  // sorted on insert
  /// Multiplier applied when rendering values (1e-9 turns recorded
  /// nanoseconds into exported seconds). Counters/gauges usually 1.
  double scale = 1.0;
};

/// Owns instruments keyed by (name, label set). Get-or-create under a
/// mutex — registration is cold; only instrument handles are hot.
class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    MetricSpec spec;
    Kind kind;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<LatencyHistogram> histogram;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry for true singletons (TaskPool, benches).
  /// Components with per-instance stats should default to their own.
  static MetricsRegistry& Global();

  std::shared_ptr<Counter> GetCounter(MetricSpec spec);
  std::shared_ptr<Gauge> GetGauge(MetricSpec spec);
  std::shared_ptr<LatencyHistogram> GetHistogram(MetricSpec spec);

  /// All entries, sorted by (name, labels) — the deterministic order
  /// exposition and self-scrape both rely on.
  std::vector<Entry> Entries() const;

 private:
  Entry* FindOrCreate(MetricSpec&& spec, Kind kind);

  mutable std::mutex mu_;
  // Key: name + '\0' + "k=v\0" pairs with labels pre-sorted, so map
  // order is exactly the deterministic exposition order.
  std::map<std::string, Entry> entries_;
};

}  // namespace telemetry
}  // namespace asap

#endif  // ASAP_TELEMETRY_METRICS_H_
