#include "telemetry/exposition.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace asap {
namespace telemetry {

namespace {

// Deterministic number rendering: exact integers print as integers
// (the common case for counters and unscaled histogram counts), the
// rest as shortest-ish %.9g — stable across runs, pinnable in tests.
void AppendNumber(double v, std::string* out) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
    out->append(buf);
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out->append(buf);
  }
}

void AppendLabels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const char* extra_key, const char* extra_value, std::string* out) {
  if (labels.empty() && extra_key == nullptr) return;
  out->push_back('{');
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out->push_back(',');
    first = false;
    out->append(kv.first);
    out->append("=\"");
    out->append(kv.second);
    out->push_back('"');
  }
  if (extra_key != nullptr) {
    if (!first) out->push_back(',');
    out->append(extra_key);
    out->append("=\"");
    out->append(extra_value);
    out->push_back('"');
  }
  out->push_back('}');
}

void AppendSample(const std::string& name,
                  const std::vector<std::pair<std::string, std::string>>& labels,
                  const char* extra_key, const char* extra_value, double value,
                  std::string* out) {
  out->append(name);
  AppendLabels(labels, extra_key, extra_value, out);
  out->push_back(' ');
  AppendNumber(value, out);
  out->push_back('\n');
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.99};
constexpr const char* kQuantileNames[] = {"0.5", "0.9", "0.99"};

}  // namespace

void AppendEntry(const MetricsRegistry::Entry& entry, std::string* out) {
  const MetricSpec& spec = entry.spec;
  switch (entry.kind) {
    case MetricsRegistry::Kind::kCounter:
      AppendSample(spec.name, spec.labels, nullptr, nullptr,
                   static_cast<double>(entry.counter->Value()) * spec.scale,
                   out);
      break;
    case MetricsRegistry::Kind::kGauge:
      AppendSample(spec.name, spec.labels, nullptr, nullptr,
                   entry.gauge->Value() * spec.scale, out);
      break;
    case MetricsRegistry::Kind::kHistogram: {
      LatencyHistogram::Snapshot snap = entry.histogram->TakeSnapshot();
      for (unsigned i = 0; i < 3; ++i) {
        AppendSample(spec.name, spec.labels, "quantile", kQuantileNames[i],
                     static_cast<double>(snap.Quantile(kQuantiles[i])) *
                         spec.scale,
                     out);
      }
      AppendSample(spec.name + "_sum", spec.labels, nullptr, nullptr,
                   static_cast<double>(snap.sum) * spec.scale, out);
      AppendSample(spec.name + "_count", spec.labels, nullptr, nullptr,
                   static_cast<double>(snap.count), out);
      break;
    }
  }
}

std::string RenderPrometheus(const MetricsRegistry& registry) {
  std::string out;
  out.reserve(4096);
  const std::vector<MetricsRegistry::Entry> entries = registry.Entries();
  // One # TYPE header per family (entries are sorted by name, so a
  // family's label variants are contiguous).
  const std::string* last_family = nullptr;
  for (const MetricsRegistry::Entry& e : entries) {
    if (last_family == nullptr || *last_family != e.spec.name) {
      out.append("# TYPE ");
      out.append(e.spec.name);
      switch (e.kind) {
        case MetricsRegistry::Kind::kCounter:
          out.append(" counter\n");
          break;
        case MetricsRegistry::Kind::kGauge:
          out.append(" gauge\n");
          break;
        case MetricsRegistry::Kind::kHistogram:
          out.append(" summary\n");
          break;
      }
      if (!e.spec.help.empty()) {
        out.append("# HELP ");
        out.append(e.spec.name);
        out.push_back(' ');
        out.append(e.spec.help);
        out.push_back('\n');
      }
    }
    AppendEntry(e, &out);
    last_family = &e.spec.name;
  }
  return out;
}

}  // namespace telemetry
}  // namespace asap
