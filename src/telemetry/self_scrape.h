// SelfScrapeSource: the dogfooding bridge. Samples a MetricsRegistry
// every tick and emits the samples as `asap.self.*` named records —
// a stream::MultiSource, so the engine's own telemetry flows through
// the identical ASAP pipeline (sharding, pane aggregation, smoothing,
// FleetView rollups) as any fleet workload. Modeled on Akumuli's
// PerfmonCounters sampler, but closing the loop: the engine monitors
// itself.
//
// Per tick, each instrument becomes one or more records:
//   counter    -> delta since the previous tick (rate per tick)
//   gauge      -> current value
//   histogram  -> `.p50` and `.p99` sub-series (quantiles of the
//                 cumulative distribution), scaled by MetricSpec.scale
//
// Series names are `asap.self.<family>` with the redundant `asap_`
// exposition prefix stripped and labels appended in registry order,
// e.g. `asap.self.shard_queue_depth{shard=0}` or
// `asap.self.wire_decode_seconds.p99{loop=1}` — every byte printable
// non-space ASCII, so the names are legal wire/catalog names.

#ifndef ASAP_TELEMETRY_SELF_SCRAPE_H_
#define ASAP_TELEMETRY_SELF_SCRAPE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>

#include "stream/catalog.h"
#include "stream/record.h"
#include "stream/source.h"
#include "telemetry/metrics.h"

namespace asap {
namespace telemetry {

struct SelfScrapeOptions {
  /// Wall-time pause before each tick after the first (0 = free-run).
  /// Scrape cadence is the self-stream's sample rate: 100ms ≈ 10Hz.
  double tick_interval_ms = 100.0;

  /// Stop after this many ticks (0 = run until Stop()).
  size_t max_ticks = 0;

  /// Called immediately before each scrape — tests use it to advance
  /// the instruments deterministically, making the emitted stream a
  /// pure function of tick count.
  std::function<void()> tick_hook;
};

/// MultiSource over a registry. Single-consumer (the engine's producer
/// thread); Stop() may be called from any thread.
class SelfScrapeSource : public stream::MultiSource {
 public:
  SelfScrapeSource(stream::SeriesCatalog* catalog,
                   const MetricsRegistry* registry,
                   SelfScrapeOptions options = {});

  /// One scrape tick per call once the previous tick's records have
  /// drained; records beyond `max_records` buffer for the next call.
  size_t NextBatch(size_t max_records, stream::RecordBatch* out) override;

  /// Unbounded (0) — the registry never runs dry; termination is
  /// max_ticks or Stop().
  size_t TotalPoints() const override { return 0; }

  /// Makes NextBatch return 0 once buffered records drain.
  void Stop() { stopped_.store(true, std::memory_order_relaxed); }

  size_t ticks() const { return ticks_; }

 private:
  void ScrapeOnce();
  stream::SeriesId InternFor(const std::string& series_name);

  stream::SeriesCatalog* catalog_;
  const MetricsRegistry* registry_;
  SelfScrapeOptions options_;

  std::atomic<bool> stopped_{false};
  size_t ticks_ = 0;
  stream::RecordBatch pending_;
  size_t pending_pos_ = 0;
  /// Previous counter values, for delta emission (key = name+labels).
  std::unordered_map<std::string, uint64_t> prev_counters_;
  /// Interned ids by series name, so steady-state ticks do no catalog
  /// lookups beyond a hash probe.
  std::unordered_map<std::string, stream::SeriesId> ids_;
};

/// The self-series name for an instrument (exposed for tests and for
/// dashboards that want to Sample() a specific self metric):
/// `asap.self.` + spec name minus any `asap_` prefix + `suffix`
/// (e.g. ".p99" or "") + `{k=v,...}` if the spec has labels.
std::string SelfSeriesName(const MetricSpec& spec, const char* suffix);

}  // namespace telemetry
}  // namespace asap

#endif  // ASAP_TELEMETRY_SELF_SCRAPE_H_
