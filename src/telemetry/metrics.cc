#include "telemetry/metrics.h"

#include <algorithm>

namespace asap {
namespace telemetry {

namespace internal {
std::atomic<bool> g_enabled{true};

namespace {
std::atomic<unsigned> g_next_slot{0};
}  // namespace

unsigned ThreadSlot() {
  thread_local unsigned slot =
      g_next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}
}  // namespace internal

void SetTelemetryEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

bool TelemetryEnabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments handed out as shared_ptrs may be
  // touched by detached threads during static destruction.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

namespace {
std::string EntryKey(const MetricSpec& spec) {
  std::string key = spec.name;
  key.push_back('\0');
  for (const auto& kv : spec.labels) {
    key += kv.first;
    key.push_back('=');
    key += kv.second;
    key.push_back('\0');
  }
  return key;
}
}  // namespace

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(MetricSpec&& spec,
                                                      Kind kind) {
  std::sort(spec.labels.begin(), spec.labels.end());
  std::string key = EntryKey(spec);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Re-registration with a different kind is a programming error;
    // returning null makes the caller's Get* return an empty handle
    // rather than corrupting the existing instrument.
    return it->second.kind == kind ? &it->second : nullptr;
  }
  Entry entry;
  entry.spec = std::move(spec);
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_shared<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_shared<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_shared<LatencyHistogram>();
      break;
  }
  return &entries_.emplace(std::move(key), std::move(entry)).first->second;
}

std::shared_ptr<Counter> MetricsRegistry::GetCounter(MetricSpec spec) {
  Entry* e = FindOrCreate(std::move(spec), Kind::kCounter);
  return e != nullptr ? e->counter : nullptr;
}

std::shared_ptr<Gauge> MetricsRegistry::GetGauge(MetricSpec spec) {
  Entry* e = FindOrCreate(std::move(spec), Kind::kGauge);
  return e != nullptr ? e->gauge : nullptr;
}

std::shared_ptr<LatencyHistogram> MetricsRegistry::GetHistogram(
    MetricSpec spec) {
  Entry* e = FindOrCreate(std::move(spec), Kind::kHistogram);
  return e != nullptr ? e->histogram : nullptr;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& kv : entries_) out.push_back(kv.second);
  return out;
}

}  // namespace telemetry
}  // namespace asap
