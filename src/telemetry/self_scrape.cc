#include "telemetry/self_scrape.h"

#include <chrono>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace asap {
namespace telemetry {

std::string SelfSeriesName(const MetricSpec& spec, const char* suffix) {
  std::string name = "asap.self.";
  std::string_view family = spec.name;
  if (family.rfind("asap_", 0) == 0) family.remove_prefix(5);
  name.append(family);
  if (suffix != nullptr) name.append(suffix);
  if (!spec.labels.empty()) {
    name.push_back('{');
    bool first = true;
    for (const auto& kv : spec.labels) {
      if (!first) name.push_back(',');
      first = false;
      name += kv.first;
      name.push_back('=');
      name += kv.second;
    }
    name.push_back('}');
  }
  return name;
}

SelfScrapeSource::SelfScrapeSource(stream::SeriesCatalog* catalog,
                                   const MetricsRegistry* registry,
                                   SelfScrapeOptions options)
    : catalog_(catalog), registry_(registry), options_(std::move(options)) {}

stream::SeriesId SelfScrapeSource::InternFor(const std::string& series_name) {
  auto it = ids_.find(series_name);
  if (it != ids_.end()) return it->second;
  stream::SeriesId id = catalog_->Intern(series_name);
  ids_.emplace(series_name, id);
  return id;
}

void SelfScrapeSource::ScrapeOnce() {
  if (options_.tick_hook) options_.tick_hook();
  const std::vector<MetricsRegistry::Entry> entries = registry_->Entries();
  for (const MetricsRegistry::Entry& e : entries) {
    const MetricSpec& spec = e.spec;
    switch (e.kind) {
      case MetricsRegistry::Kind::kCounter: {
        const uint64_t now = e.counter->Value();
        // Key on the full self-series name (name+labels) — unique per
        // instrument by registry construction.
        std::string name = SelfSeriesName(spec, nullptr);
        uint64_t& prev = prev_counters_[name];
        const uint64_t delta = now - prev;
        prev = now;
        pending_.push_back({InternFor(name),
                            static_cast<double>(delta) * spec.scale});
        break;
      }
      case MetricsRegistry::Kind::kGauge: {
        std::string name = SelfSeriesName(spec, nullptr);
        pending_.push_back({InternFor(name), e.gauge->Value() * spec.scale});
        break;
      }
      case MetricsRegistry::Kind::kHistogram: {
        const LatencyHistogram::Snapshot snap = e.histogram->TakeSnapshot();
        pending_.push_back(
            {InternFor(SelfSeriesName(spec, ".p50")),
             static_cast<double>(snap.Quantile(0.5)) * spec.scale});
        pending_.push_back(
            {InternFor(SelfSeriesName(spec, ".p99")),
             static_cast<double>(snap.Quantile(0.99)) * spec.scale});
        break;
      }
    }
  }
  ++ticks_;
}

size_t SelfScrapeSource::NextBatch(size_t max_records,
                                   stream::RecordBatch* out) {
  if (pending_pos_ >= pending_.size()) {
    pending_.clear();
    pending_pos_ = 0;
    if (stopped_.load(std::memory_order_relaxed)) return 0;
    if (options_.max_ticks != 0 && ticks_ >= options_.max_ticks) return 0;
    if (ticks_ > 0 && options_.tick_interval_ms > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.tick_interval_ms));
      // A Stop() during the pause should win over one more scrape.
      if (stopped_.load(std::memory_order_relaxed)) return 0;
    }
    ScrapeOnce();
    if (pending_.empty()) return 0;  // registry had no instruments
  }
  size_t n = pending_.size() - pending_pos_;
  if (n > max_records) n = max_records;
  out->insert(out->end(), pending_.begin() + pending_pos_,
              pending_.begin() + pending_pos_ + n);
  pending_pos_ += n;
  return n;
}

}  // namespace telemetry
}  // namespace asap
