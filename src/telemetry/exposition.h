// Prometheus-style text exposition for a MetricsRegistry.
//
// Counters render as `<name>{labels} <value>`, gauges the same, and
// histograms as summary-style quantile lines plus `_sum`/`_count`:
//
//   # TYPE asap_wire_records_total counter
//   asap_wire_records_total{loop="2"} 1048576
//   # TYPE asap_shard_push_seconds summary
//   asap_shard_push_seconds{shard="0",quantile="0.5"} 0.0000012
//   asap_shard_push_seconds_sum{shard="0"} 0.37
//   asap_shard_push_seconds_count{shard="0"} 250000
//
// Output order is deterministic (registry order: name, then labels),
// so tests can pin golden dumps and CI can grep for families. The HTTP
// frontend on the ROADMAP can serve this string verbatim as /metrics.

#ifndef ASAP_TELEMETRY_EXPOSITION_H_
#define ASAP_TELEMETRY_EXPOSITION_H_

#include <string>

#include "telemetry/metrics.h"

namespace asap {
namespace telemetry {

/// Renders every instrument in `registry` to exposition text.
std::string RenderPrometheus(const MetricsRegistry& registry);

/// Renders a single already-materialized entry (used by the renderer
/// and by callers that scrape incrementally).
void AppendEntry(const MetricsRegistry::Entry& entry, std::string* out);

}  // namespace telemetry
}  // namespace asap

#endif  // ASAP_TELEMETRY_EXPOSITION_H_
