#include "stats/normalize.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace asap {
namespace stats {

std::vector<double> ZScore(const std::vector<double>& v) {
  if (v.empty()) {
    return {};
  }
  const double mean = Mean(v);
  const double sd = StdDev(v);
  std::vector<double> out(v.size());
  if (sd <= 0.0) {
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }
  for (size_t i = 0; i < v.size(); ++i) {
    out[i] = (v[i] - mean) / sd;
  }
  return out;
}

std::vector<double> MinMaxScale(const std::vector<double>& v, double lo,
                                double hi) {
  if (v.empty()) {
    return {};
  }
  const double mn = Min(v);
  const double mx = Max(v);
  std::vector<double> out(v.size());
  if (mx <= mn) {
    std::fill(out.begin(), out.end(), 0.5 * (lo + hi));
    return out;
  }
  const double scale = (hi - lo) / (mx - mn);
  for (size_t i = 0; i < v.size(); ++i) {
    out[i] = lo + (v[i] - mn) * scale;
  }
  return out;
}

std::vector<double> Demean(const std::vector<double>& v) {
  const double mean = Mean(v);
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    out[i] = v[i] - mean;
  }
  return out;
}

}  // namespace stats
}  // namespace asap
