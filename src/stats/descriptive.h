// Descriptive statistics over contiguous double data.
//
// Conventions (matching the paper, §3.1–3.2):
//   * variance / stddev are population moments (divide by N);
//   * kurtosis is the non-excess fourth standardized moment, so a
//     normal distribution scores 3 and a Laplace distribution scores 6.

#ifndef ASAP_STATS_DESCRIPTIVE_H_
#define ASAP_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace asap {
namespace stats {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Population variance (divide by N); 0 for fewer than 2 elements.
double Variance(const std::vector<double>& v);

/// Population standard deviation.
double StdDev(const std::vector<double>& v);

/// Population covariance of two equal-length vectors.
double Covariance(const std::vector<double>& a, const std::vector<double>& b);

/// Third standardized moment; 0 for degenerate input.
double Skewness(const std::vector<double>& v);

/// Fourth standardized moment E[(X-mu)^4] / E[(X-mu)^2]^2.
/// Returns 0 for degenerate (constant or too-short) input.
double Kurtosis(const std::vector<double>& v);

/// Minimum value; aborts on empty input.
double Min(const std::vector<double>& v);

/// Maximum value; aborts on empty input.
double Max(const std::vector<double>& v);

/// Median (midpoint of the two central order statistics for even N);
/// aborts on empty input.
double Median(std::vector<double> v);

/// First difference series {x_2 - x_1, ..., x_N - x_{N-1}};
/// empty for N < 2.
std::vector<double> FirstDifferences(const std::vector<double>& v);

/// All four central moments in one pass.
struct Moments {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // population
  double skewness = 0.0;
  double kurtosis = 0.0;  // non-excess
};

/// Computes all moments in a single numerically careful pass.
Moments ComputeMoments(const std::vector<double>& v);

}  // namespace stats
}  // namespace asap

#endif  // ASAP_STATS_DESCRIPTIVE_H_
