// Normalization utilities.
//
// The paper plots z-scores instead of raw values ("a means of
// normalizing the visual field across plots", Fig. 1 footnote); the
// perception proxy and examples use the same convention.

#ifndef ASAP_STATS_NORMALIZE_H_
#define ASAP_STATS_NORMALIZE_H_

#include <vector>

namespace asap {
namespace stats {

/// Returns (v - mean) / stddev elementwise. A constant series maps to
/// all zeros.
std::vector<double> ZScore(const std::vector<double>& v);

/// Linearly rescales v into [lo, hi]. A constant series maps to the
/// midpoint.
std::vector<double> MinMaxScale(const std::vector<double>& v, double lo,
                                double hi);

/// Centers v at zero mean (no scaling).
std::vector<double> Demean(const std::vector<double>& v);

}  // namespace stats
}  // namespace asap

#endif  // ASAP_STATS_NORMALIZE_H_
