#include "stats/welford.h"

#include <cmath>

namespace asap {
namespace stats {

void WelfordAccumulator::Add(double x) {
  const double n1 = static_cast<double>(count_);
  count_ += 1;
  const double n = static_cast<double>(count_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void WelfordAccumulator::Merge(const WelfordAccumulator& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  count_ += other.count_;
}

void WelfordAccumulator::Reset() { *this = WelfordAccumulator(); }

double WelfordAccumulator::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double WelfordAccumulator::stddev() const { return std::sqrt(variance()); }

double WelfordAccumulator::skewness() const {
  const double var = variance();
  if (count_ < 2 || var <= 0.0) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  const double sd = std::sqrt(var);
  return (m3_ / n) / (sd * sd * sd);
}

double WelfordAccumulator::kurtosis() const {
  const double var = variance();
  if (count_ < 2 || var <= 0.0) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  return (m4_ / n) / (var * var);
}

void ScoreAccumulator::Add(double y) {
  const double n1 = static_cast<double>(count_);
  count_ += 1;
  const double n = static_cast<double>(count_);
  const double delta = y - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
  if (count_ > 1) {
    const double d = y - prev_;
    const double k = n1;  // number of differences seen so far
    const double d_delta = d - diff_mean_;
    const double d_delta_k = d_delta / k;
    diff_mean_ += d_delta_k;
    diff_m2_ += d_delta * d_delta_k * (k - 1.0);
  }
  prev_ = y;
}

void ScoreAccumulator::Reset() { *this = ScoreAccumulator(); }

double ScoreAccumulator::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double ScoreAccumulator::kurtosis() const {
  const double var = variance();
  if (count_ < 2 || var <= 0.0) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  return (m4_ / n) / (var * var);
}

double ScoreAccumulator::diff_variance() const {
  if (count_ < 3) {
    return 0.0;
  }
  return diff_m2_ / static_cast<double>(count_ - 1);
}

double ScoreAccumulator::roughness() const {
  return std::sqrt(diff_variance());
}

}  // namespace stats
}  // namespace asap
