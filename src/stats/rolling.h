// Rolling (sliding-window) statistics with O(1) amortized updates.
//
// The window-search inner loop evaluates roughness and kurtosis of
// SMA(X, w) for many w; rolling moment maintenance turns each
// evaluation from O(N * w) into O(N). RollingMoments maintains raw
// power sums over a fixed-capacity window; central moments are derived
// on demand. Raw-sum maintenance can lose precision after very long
// runs, so the deque variant recomputes sums from the retained values
// on demand if drift is detected.

#ifndef ASAP_STATS_ROLLING_H_
#define ASAP_STATS_ROLLING_H_

#include <cstddef>
#include <deque>

namespace asap {
namespace stats {

/// Fixed-capacity sliding window maintaining sum, sum of squares, and
/// (optionally) 3rd/4th power sums for O(1) moment queries.
class RollingMoments {
 public:
  /// capacity: number of most-recent observations retained. Must be >= 1.
  explicit RollingMoments(size_t capacity);

  /// Pushes a new observation, evicting the oldest once at capacity.
  void Push(double x);

  /// Resets to empty (capacity unchanged).
  void Reset();

  size_t size() const { return window_.size(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return window_.size() == capacity_; }

  double mean() const;
  /// Population variance over the current window.
  double variance() const;
  double stddev() const;
  /// Non-excess kurtosis over the current window (0 if degenerate).
  double kurtosis() const;

  /// Oldest retained observation; aborts if empty.
  double Front() const;
  /// Newest retained observation; aborts if empty.
  double Back() const;

 private:
  void RecomputeSums();

  size_t capacity_;
  std::deque<double> window_;
  double s1_ = 0.0;  // sum x
  double s2_ = 0.0;  // sum x^2
  double s3_ = 0.0;  // sum x^3
  double s4_ = 0.0;  // sum x^4
  size_t pushes_since_recompute_ = 0;
};

/// Simple-moving-average maintained incrementally over a stream:
/// push values; once `window` values have been seen, Current() is the
/// mean of the last `window` observations.
class RollingMean {
 public:
  explicit RollingMean(size_t window);

  void Push(double x);
  void Reset();

  bool Ready() const { return window_.size() == window_size_; }
  size_t window() const { return window_size_; }

  /// Mean of the retained observations (partial window allowed).
  double Current() const;

 private:
  size_t window_size_;
  std::deque<double> window_;
  double sum_ = 0.0;
  size_t pushes_since_recompute_ = 0;
};

}  // namespace stats
}  // namespace asap

#endif  // ASAP_STATS_ROLLING_H_
