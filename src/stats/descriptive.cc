#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace asap {
namespace stats {

double Mean(const std::vector<double>& v) {
  if (v.empty()) {
    return 0.0;
  }
  // Pairwise-ish accumulation is unnecessary at our sizes; compensated
  // (Kahan) summation keeps error independent of N.
  double sum = 0.0;
  double comp = 0.0;
  for (double x : v) {
    double y = x - comp;
    double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(v);
  double sum = 0.0;
  for (double x : v) {
    const double d = x - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Covariance(const std::vector<double>& a, const std::vector<double>& b) {
  ASAP_CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) {
    return 0.0;
  }
  const double ma = Mean(a);
  const double mb = Mean(b);
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += (a[i] - ma) * (b[i] - mb);
  }
  return sum / static_cast<double>(a.size());
}

double Skewness(const std::vector<double>& v) {
  Moments m = ComputeMoments(v);
  return m.skewness;
}

double Kurtosis(const std::vector<double>& v) {
  Moments m = ComputeMoments(v);
  return m.kurtosis;
}

double Min(const std::vector<double>& v) {
  ASAP_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  ASAP_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

double Median(std::vector<double> v) {
  ASAP_CHECK(!v.empty());
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) {
    return hi;
  }
  std::nth_element(v.begin(), v.begin() + mid - 1, v.end());
  return 0.5 * (v[mid - 1] + hi);
}

std::vector<double> FirstDifferences(const std::vector<double>& v) {
  if (v.size() < 2) {
    return {};
  }
  std::vector<double> diff(v.size() - 1);
  for (size_t i = 0; i + 1 < v.size(); ++i) {
    diff[i] = v[i + 1] - v[i];
  }
  return diff;
}

Moments ComputeMoments(const std::vector<double>& v) {
  Moments m;
  m.count = v.size();
  if (v.empty()) {
    return m;
  }
  m.mean = Mean(v);
  if (v.size() < 2) {
    return m;
  }
  double s2 = 0.0;
  double s3 = 0.0;
  double s4 = 0.0;
  for (double x : v) {
    const double d = x - m.mean;
    const double d2 = d * d;
    s2 += d2;
    s3 += d2 * d;
    s4 += d2 * d2;
  }
  const double n = static_cast<double>(v.size());
  m.variance = s2 / n;
  if (m.variance <= 0.0) {
    return m;  // constant series: skewness/kurtosis stay 0
  }
  const double sd = std::sqrt(m.variance);
  m.skewness = (s3 / n) / (sd * sd * sd);
  m.kurtosis = (s4 / n) / (m.variance * m.variance);
  return m;
}

}  // namespace stats
}  // namespace asap
