#include "stats/rolling.h"

#include <cmath>

#include "common/macros.h"

namespace asap {
namespace stats {

namespace {
// Refresh power sums from scratch periodically so floating-point drift
// from incremental add/subtract stays bounded.
constexpr size_t kRecomputeInterval = 1u << 16;
}  // namespace

RollingMoments::RollingMoments(size_t capacity) : capacity_(capacity) {
  ASAP_CHECK_GE(capacity, 1u);
}

void RollingMoments::Push(double x) {
  if (window_.size() == capacity_) {
    const double old = window_.front();
    window_.pop_front();
    const double o2 = old * old;
    s1_ -= old;
    s2_ -= o2;
    s3_ -= o2 * old;
    s4_ -= o2 * o2;
  }
  window_.push_back(x);
  const double x2 = x * x;
  s1_ += x;
  s2_ += x2;
  s3_ += x2 * x;
  s4_ += x2 * x2;
  if (++pushes_since_recompute_ >= kRecomputeInterval) {
    RecomputeSums();
  }
}

void RollingMoments::Reset() {
  window_.clear();
  s1_ = s2_ = s3_ = s4_ = 0.0;
  pushes_since_recompute_ = 0;
}

void RollingMoments::RecomputeSums() {
  s1_ = s2_ = s3_ = s4_ = 0.0;
  for (double x : window_) {
    const double x2 = x * x;
    s1_ += x;
    s2_ += x2;
    s3_ += x2 * x;
    s4_ += x2 * x2;
  }
  pushes_since_recompute_ = 0;
}

double RollingMoments::mean() const {
  if (window_.empty()) {
    return 0.0;
  }
  return s1_ / static_cast<double>(window_.size());
}

double RollingMoments::variance() const {
  const size_t n = window_.size();
  if (n < 2) {
    return 0.0;
  }
  const double nn = static_cast<double>(n);
  const double m = s1_ / nn;
  const double var = s2_ / nn - m * m;
  return var > 0.0 ? var : 0.0;
}

double RollingMoments::stddev() const { return std::sqrt(variance()); }

double RollingMoments::kurtosis() const {
  const size_t n = window_.size();
  if (n < 2) {
    return 0.0;
  }
  const double nn = static_cast<double>(n);
  const double m = s1_ / nn;
  const double var = variance();
  if (var <= 0.0) {
    return 0.0;
  }
  // Central fourth moment from raw sums:
  // E[(X-m)^4] = E[X^4] - 4m E[X^3] + 6m^2 E[X^2] - 3m^4.
  const double e2 = s2_ / nn;
  const double e3 = s3_ / nn;
  const double e4 = s4_ / nn;
  const double m4 = e4 - 4.0 * m * e3 + 6.0 * m * m * e2 - 3.0 * m * m * m * m;
  return m4 / (var * var);
}

double RollingMoments::Front() const {
  ASAP_CHECK(!window_.empty());
  return window_.front();
}

double RollingMoments::Back() const {
  ASAP_CHECK(!window_.empty());
  return window_.back();
}

RollingMean::RollingMean(size_t window) : window_size_(window) {
  ASAP_CHECK_GE(window, 1u);
}

void RollingMean::Push(double x) {
  if (window_.size() == window_size_) {
    sum_ -= window_.front();
    window_.pop_front();
  }
  window_.push_back(x);
  sum_ += x;
  if (++pushes_since_recompute_ >= kRecomputeInterval) {
    sum_ = 0.0;
    for (double v : window_) {
      sum_ += v;
    }
    pushes_since_recompute_ = 0;
  }
}

void RollingMean::Reset() {
  window_.clear();
  sum_ = 0.0;
  pushes_since_recompute_ = 0;
}

double RollingMean::Current() const {
  if (window_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(window_.size());
}

}  // namespace stats
}  // namespace asap
