#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace asap {
namespace stats {

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ASAP_CHECK_LT(lo, hi);
  ASAP_CHECK_GE(bins, 1u);
}

void Histogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  long bin = static_cast<long>(std::floor((x - lo_) / width));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  counts_[static_cast<size_t>(bin)] += 1;
  total_ += 1;
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) {
    Add(v);
  }
}

size_t Histogram::count(size_t bin) const {
  ASAP_CHECK_LT(bin, counts_.size());
  return counts_[bin];
}

double Histogram::BinCenter(size_t bin) const {
  ASAP_CHECK_LT(bin, counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double Histogram::TailFraction(double center, double unit, double k) const {
  if (total_ == 0 || unit <= 0.0) {
    return 0.0;
  }
  size_t tail = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (std::fabs(BinCenter(b) - center) > k * unit) {
      tail += counts_[b];
    }
  }
  return static_cast<double>(tail) / static_cast<double>(total_);
}

std::string Histogram::ToAscii(size_t width) const {
  size_t max_count = 0;
  for (size_t c : counts_) {
    max_count = std::max(max_count, c);
  }
  std::string out;
  char label[64];
  for (size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(label, sizeof(label), "%9.3f | ", BinCenter(b));
    out += label;
    const size_t bar =
        max_count == 0 ? 0 : counts_[b] * width / max_count;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace stats
}  // namespace asap
