// Streaming (single-pass, mergeable) moment accumulation.
//
// Streaming ASAP needs running moments of unbounded streams without
// storing the data. WelfordAccumulator extends Welford's algorithm to
// the third and fourth central moments (Pébay 2008) and supports
// merging, which is what pane-based sub-aggregation requires.

#ifndef ASAP_STATS_WELFORD_H_
#define ASAP_STATS_WELFORD_H_

#include <cstddef>

namespace asap {
namespace stats {

/// Online accumulator for count/mean/M2/M3/M4.
class WelfordAccumulator {
 public:
  WelfordAccumulator() = default;

  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Merges another accumulator (order-independent up to FP rounding).
  void Merge(const WelfordAccumulator& other);

  /// Resets to the empty state.
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance (divide by N).
  double variance() const;

  /// Population standard deviation.
  double stddev() const;

  /// Third standardized moment; 0 for degenerate input.
  double skewness() const;

  /// Non-excess fourth standardized moment; 0 for degenerate input.
  double kurtosis() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
};

/// WelfordAccumulator generalized to ASAP's candidate-scoring state:
/// one Add(y) folds y into running mean/M2/M3/M4 *and* folds the first
/// difference y - y_prev into a separate running mean/M2, so a single
/// allocation-free pass over a smoothed series yields both of ASAP's
/// quality metrics. This is the *online* form — no mean known up
/// front, values arriving one at a time (streaming sub-aggregation,
/// reference cross-checks). The batch hot path, ScoreWindow in
/// core/series_context.h, tracks the same running state but exploits
/// its O(1) prefix-sum means to accumulate central moments directly,
/// which drops the per-point Welford rescaling divisions:
///
///   kurtosis()  — non-excess kurtosis of the value stream (§3.2)
///   roughness() — population stddev of the difference stream (§3.1)
///
/// Degenerate-input conventions match stats::ComputeMoments and
/// core/metrics.h exactly: kurtosis is 0 for < 2 values or zero
/// variance; roughness is 0 for < 3 values.
class ScoreAccumulator {
 public:
  ScoreAccumulator() = default;

  /// Folds one value of the (smoothed) series, in series order.
  void Add(double y);

  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance of the values.
  double variance() const;

  /// Non-excess kurtosis of the values; 0 for degenerate input.
  double kurtosis() const;

  /// Population variance of the first differences.
  double diff_variance() const;

  /// Population stddev of the first differences (= Roughness of the
  /// value stream).
  double roughness() const;

 private:
  // Value moments (Pébay 2008, as in WelfordAccumulator).
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  // First-difference moments (count is count_ - 1 once count_ >= 1).
  double diff_mean_ = 0.0;
  double diff_m2_ = 0.0;
  double prev_ = 0.0;
};

}  // namespace stats
}  // namespace asap

#endif  // ASAP_STATS_WELFORD_H_
