// Streaming (single-pass, mergeable) moment accumulation.
//
// Streaming ASAP needs running moments of unbounded streams without
// storing the data. WelfordAccumulator extends Welford's algorithm to
// the third and fourth central moments (Pébay 2008) and supports
// merging, which is what pane-based sub-aggregation requires.

#ifndef ASAP_STATS_WELFORD_H_
#define ASAP_STATS_WELFORD_H_

#include <cstddef>

namespace asap {
namespace stats {

/// Online accumulator for count/mean/M2/M3/M4.
class WelfordAccumulator {
 public:
  WelfordAccumulator() = default;

  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Merges another accumulator (order-independent up to FP rounding).
  void Merge(const WelfordAccumulator& other);

  /// Resets to the empty state.
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance (divide by N).
  double variance() const;

  /// Population standard deviation.
  double stddev() const;

  /// Third standardized moment; 0 for degenerate input.
  double skewness() const;

  /// Non-excess fourth standardized moment; 0 for degenerate input.
  double kurtosis() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
};

}  // namespace stats
}  // namespace asap

#endif  // ASAP_STATS_WELFORD_H_
