// Fixed-bin histogram, used by the Fig. 5 reproduction (normal vs.
// Laplace tail mass) and by dataset diagnostics.

#ifndef ASAP_STATS_HISTOGRAM_H_
#define ASAP_STATS_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace asap {
namespace stats {

/// Equal-width histogram over [lo, hi); values outside the range are
/// clamped into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);
  void AddAll(const std::vector<double>& values);

  size_t bins() const { return counts_.size(); }
  size_t total() const { return total_; }
  size_t count(size_t bin) const;

  /// Fraction of mass in bins whose center is more than `k` standard
  /// units from `center` (a crude tail-mass probe).
  double TailFraction(double center, double unit, double k) const;

  /// Center of bin `bin`.
  double BinCenter(size_t bin) const;

  /// Multi-line ASCII rendering (one row per bin), for examples.
  std::string ToAscii(size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace stats
}  // namespace asap

#endif  // ASAP_STATS_HISTOGRAM_H_
