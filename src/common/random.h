// Deterministic pseudo-random number generation.
//
// All stochastic components of libasap (synthetic datasets, observer
// noise in the perception proxy, property-test inputs) draw from this
// PCG32 generator so experiments are exactly reproducible across
// platforms — std::normal_distribution is implementation-defined, so we
// implement the distributions ourselves.

#ifndef ASAP_COMMON_RANDOM_H_
#define ASAP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asap {

/// PCG32 (O'Neill 2014): 64-bit state, 32-bit output, period 2^64.
/// Small, fast, and statistically strong enough for simulation workloads.
class Pcg32 {
 public:
  /// Seeds the generator; `seq` selects one of 2^63 independent streams.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t seq = 0xda3e39cb94b95bdbULL);

  /// Next uniformly distributed 32-bit value.
  uint32_t NextU32();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  uint32_t NextBounded(uint32_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic across platforms).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Laplace(mu, b) via inverse CDF; variance = 2 b^2, kurtosis = 6.
  double Laplace(double mu, double b);

  /// Exponential with the given rate (lambda > 0).
  double Exponential(double lambda);

 private:
  uint64_t state_;
  uint64_t inc_;
  // Box–Muller produces pairs; cache the spare value.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Convenience: n IID standard-normal samples.
std::vector<double> GaussianVector(Pcg32* rng, size_t n, double mean = 0.0,
                                   double stddev = 1.0);

/// Convenience: n IID Laplace samples.
std::vector<double> LaplaceVector(Pcg32* rng, size_t n, double mu = 0.0,
                                  double b = 1.0);

/// Convenience: n IID Uniform(lo, hi) samples.
std::vector<double> UniformVector(Pcg32* rng, size_t n, double lo = 0.0,
                                  double hi = 1.0);

}  // namespace asap

#endif  // ASAP_COMMON_RANDOM_H_
