// The repo's timing primitive: a monotonic wall-clock stopwatch.
//
// Originally a bench-harness helper, it now times production paths
// too — shard worker busy time, run budgets, wire idle timeouts, and
// (via telemetry::ScopedTimer) every latency histogram. steady_clock
// only: never subject to NTP steps, safe across threads.

#ifndef ASAP_COMMON_STOPWATCH_H_
#define ASAP_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace asap {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the clock.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds since construction / last Reset.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed nanoseconds as an integer — the unit latency histograms
  /// record in (no double rounding on the hot path).
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace asap

#endif  // ASAP_COMMON_STOPWATCH_H_
