// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef ASAP_COMMON_STOPWATCH_H_
#define ASAP_COMMON_STOPWATCH_H_

#include <chrono>

namespace asap {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the clock.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds since construction / last Reset.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace asap

#endif  // ASAP_COMMON_STOPWATCH_H_
