// Execution policy: the per-call knob that pins how a kernel runs —
// how many threads participate and whether the SIMD code paths may be
// used. The *result* of every kernel that accepts an ExecPolicy is
// bitwise-identical across all policies: kernels commit to one
// canonical floating-point reduction shape (see core/kernels.h), and
// threads/SIMD only change how fast that shape is executed, never
// which operations it performs. That is what lets callers flip these
// knobs freely (and lets the parity tests pin scalar-vs-SIMD and
// 1-vs-T-thread outputs with memcmp).

#ifndef ASAP_COMMON_EXEC_POLICY_H_
#define ASAP_COMMON_EXEC_POLICY_H_

#include <cstddef>
#include <thread>

namespace asap {

/// Which instruction-set paths a kernel may dispatch to.
enum class SimdMode {
  /// Use the widest path compiled in and supported by this CPU
  /// (AVX2 on x86-64, NEON on aarch64), falling back to scalar.
  kAuto,
  /// Force the scalar reference path.
  kScalar,
};

/// Per-call execution configuration, threaded through SearchOptions
/// (and therefore SmoothOptions / StreamingOptions) and FleetView.
struct ExecPolicy {
  /// Worker threads a kernel may fan out to. 1 (the default) runs
  /// fully inline on the calling thread; 0 means "all hardware
  /// threads". The sharded fleet engine already parallelizes across
  /// series, so intra-series fan-out is opt-in.
  size_t threads = 1;
  /// SIMD dispatch mode (see SimdMode).
  SimdMode simd = SimdMode::kAuto;

  /// `threads` with 0 resolved to the hardware concurrency (>= 1).
  size_t ResolveThreads() const {
    if (threads != 0) {
      return threads;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }
};

}  // namespace asap

#endif  // ASAP_COMMON_EXEC_POLICY_H_
