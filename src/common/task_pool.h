// A small reusable task pool for intra-query parallelism.
//
// The sharded fleet engine (stream/sharded_engine.*) already spreads
// *series* across threads; this pool is the complementary axis — it
// splits the work of a single query (a ScoreWindow candidate sweep, an
// FFT stage, a percentile-band rollup) across cores. Design points:
//
//   * One process-wide pool (Global()), lazily started with
//     hardware_concurrency - 1 workers (minimum one). Queries borrow
//     workers per call; there is no per-query thread spawn.
//   * The caller always participates in its own job, so ParallelFor
//     makes progress even when every worker is busy elsewhere.
//   * Only one job is broadcast at a time. A ParallelFor that arrives
//     while another is in flight (nested parallelism, or concurrent
//     queries both asking for fan-out) simply runs its indices inline
//     on the calling thread — correct, deadlock-free, and exactly as
//     deterministic, because callers must never encode ordering in
//     which thread runs which index.
//   * Indices are handed out via a single atomic counter, so the
//     *assignment* of indices to threads is racy by construction.
//     Determinism is the callers' contract: each index writes to its
//     own slot, and the caller merges slots in index order afterwards
//     (see core/kernels.h for the canonical reduction shapes).
//
// The pool never outlives the process; workers are detached-joined in
// the destructor of the function-local static.

#ifndef ASAP_COMMON_TASK_POOL_H_
#define ASAP_COMMON_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/exec_policy.h"
#include "telemetry/metrics.h"

namespace asap {

class TaskPool {
 public:
  /// The process-wide pool (started on first use).
  static TaskPool& Global();

  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Runs fn(i) for every i in [0, count), using up to `parallelism`
  /// threads (the caller plus borrowed workers). Returns after every
  /// index has completed. fn must be safe to call concurrently for
  /// distinct indices. With parallelism <= 1, runs fully inline.
  void ParallelFor(size_t count, size_t parallelism,
                   const std::function<void(size_t)>& fn);

  /// Worker threads backing the pool (at least one).
  size_t worker_count() const { return workers_.size(); }

 private:
  TaskPool();

  void WorkerLoop();

  // The currently broadcast job. Guarded by job_mu_; workers read the
  // fields only between the epoch handshake and their done signal.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    size_t max_helpers = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> helpers{0};
    std::atomic<size_t> pending{0};
  };

  // Serializes job broadcast: at most one ParallelFor drives the
  // workers at a time; contenders fall back to inline execution.
  std::mutex job_mu_;

  std::mutex mu_;  // guards epoch_/stop_ and pairs with wake_cv_
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  bool stop_ = false;
  Job* active_ = nullptr;

  std::vector<std::thread> workers_;

  // asap_pool_* instruments in MetricsRegistry::Global() (the pool is
  // a true process singleton). shared_ptr handles keep them valid
  // regardless of static destruction order.
  std::shared_ptr<telemetry::Counter> jobs_total_;      // broadcast fan-outs
  std::shared_ptr<telemetry::Counter> inline_total_;    // sequential/contended
  std::shared_ptr<telemetry::Counter> chunks_total_;    // indices executed
  std::shared_ptr<telemetry::Counter> participations_total_;  // helper joins
  std::shared_ptr<telemetry::LatencyHistogram> fanout_nanos_;  // job wall time
};

/// Canonical fan-out helper: runs fn(c) for every chunk c in
/// [0, chunks) under the policy's thread budget. The chunk *layout*
/// must be a pure function of the problem size (never of the thread
/// count) so that results are bitwise-identical at any parallelism;
/// this helper only decides whether chunks run inline or on the pool.
template <typename Fn>
void ParallelChunks(const ExecPolicy& policy, size_t chunks, Fn&& fn) {
  const size_t threads = policy.ResolveThreads();
  if (threads <= 1 || chunks <= 1) {
    for (size_t c = 0; c < chunks; ++c) {
      fn(c);
    }
    return;
  }
  TaskPool::Global().ParallelFor(
      chunks, threads, std::function<void(size_t)>(std::forward<Fn>(fn)));
}

}  // namespace asap

#endif  // ASAP_COMMON_TASK_POOL_H_
