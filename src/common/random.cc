#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace asap {

Pcg32::Pcg32(uint64_t seed, uint64_t seq) : state_(0), inc_((seq << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Pcg32::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint32_t Pcg32::NextBounded(uint32_t bound) {
  ASAP_CHECK_GT(bound, 0u);
  // Lemire-style rejection to avoid modulo bias.
  uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Pcg32::NextDouble() {
  // 53 random bits -> [0, 1).
  uint64_t hi = NextU32();
  uint64_t lo = NextU32();
  uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);  // 2^-53
}

double Pcg32::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Pcg32::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box–Muller; guard against log(0).
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double two_pi_u2 = 2.0 * M_PI * u2;
  spare_ = mag * std::sin(two_pi_u2);
  has_spare_ = true;
  return mag * std::cos(two_pi_u2);
}

double Pcg32::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Pcg32::Laplace(double mu, double b) {
  double u = NextDouble() - 0.5;
  double sign = u < 0 ? -1.0 : 1.0;
  return mu - b * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double Pcg32::Exponential(double lambda) {
  ASAP_CHECK_GT(lambda, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

std::vector<double> GaussianVector(Pcg32* rng, size_t n, double mean,
                                   double stddev) {
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = rng->Gaussian(mean, stddev);
  }
  return out;
}

std::vector<double> LaplaceVector(Pcg32* rng, size_t n, double mu, double b) {
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = rng->Laplace(mu, b);
  }
  return out;
}

std::vector<double> UniformVector(Pcg32* rng, size_t n, double lo, double hi) {
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = rng->Uniform(lo, hi);
  }
  return out;
}

}  // namespace asap
