#include "common/task_pool.h"

#include "common/stopwatch.h"

namespace asap {

TaskPool& TaskPool::Global() {
  static TaskPool pool;
  return pool;
}

TaskPool::TaskPool() {
  // hardware_concurrency - 1 (the caller of a job is always its first
  // thread), but never zero: one worker keeps the fan-out handshake —
  // and the data races TSan watches for — exercised on 1-core hosts.
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t n = hw > 1 ? hw - 1 : 1;

  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::Global();
  jobs_total_ = reg.GetCounter(
      {"asap_pool_jobs_total", "ParallelFor calls broadcast to workers"});
  inline_total_ = reg.GetCounter(
      {"asap_pool_inline_total",
       "ParallelFor calls run inline (sequential or pool contended)"});
  chunks_total_ =
      reg.GetCounter({"asap_pool_chunks_total", "Task indices executed"});
  participations_total_ = reg.GetCounter(
      {"asap_pool_participations_total", "Worker joins into broadcast jobs"});
  fanout_nanos_ = reg.GetHistogram({"asap_pool_fanout_seconds",
                                    "Broadcast job wall time",
                                    {},
                                    1e-9});

  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    ++epoch_;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void TaskPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    wake_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    seen = epoch_;
    if (stop_) {
      return;
    }
    Job* job = active_;
    if (job == nullptr || job->next.load() >= job->count ||
        job->helpers.load() >= job->max_helpers) {
      continue;  // stale wakeup, drained job, or enough helpers already
    }
    // Register under mu_: ParallelFor's completion wait counts us, so
    // `job` stays alive until our matching deregistration below.
    job->helpers.fetch_add(1);
    lk.unlock();
    participations_total_->Increment();

    size_t i;
    uint64_t ran = 0;
    while ((i = job->next.fetch_add(1)) < job->count) {
      (*job->fn)(i);
      ++ran;
      if (job->pending.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> done_lk(mu_);
        done_cv_.notify_all();
      }
    }
    chunks_total_->Add(ran);

    job->helpers.fetch_sub(1);  // last touch of `job`
    lk.lock();
    done_cv_.notify_all();
  }
}

void TaskPool::ParallelFor(size_t count, size_t parallelism,
                           const std::function<void(size_t)>& fn) {
  if (count == 0) {
    return;
  }
  const bool sequential = parallelism <= 1 || count == 1 || workers_.empty();
  // At most one job drives the workers; a ParallelFor issued while
  // another is in flight (nested fan-out, or two queries racing) runs
  // inline instead of queueing — simple, deadlock-free, and
  // result-identical because index->thread assignment never matters.
  std::unique_lock<std::mutex> job_lk(job_mu_, std::defer_lock);
  if (sequential || !job_lk.try_lock()) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);
    }
    inline_total_->Increment();
    chunks_total_->Add(count);
    return;
  }

  jobs_total_->Increment();
  telemetry::ScopedTimer fanout_timer(fanout_nanos_.get());

  Job job;
  job.fn = &fn;
  job.count = count;
  job.max_helpers = parallelism - 1;  // the caller is the first thread
  job.pending.store(count);
  {
    std::lock_guard<std::mutex> lk(mu_);
    active_ = &job;
    ++epoch_;
  }
  wake_cv_.notify_all();

  // The caller always participates, so the job completes even if every
  // worker stays busy elsewhere.
  size_t i;
  uint64_t ran = 0;
  while ((i = job.next.fetch_add(1)) < count) {
    fn(i);
    ++ran;
    if (job.pending.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
  chunks_total_->Add(ran);

  std::unique_lock<std::mutex> lk(mu_);
  active_ = nullptr;
  done_cv_.wait(lk, [&] {
    return job.pending.load() == 0 && job.helpers.load() == 0;
  });
}

}  // namespace asap
