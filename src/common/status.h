// Status: the library-wide error model.
//
// libasap follows the database-engine convention (Arrow, RocksDB) of
// returning Status / Result<T> from fallible operations instead of
// throwing exceptions. A Status is cheap to copy in the OK case (no
// allocation) and carries a code plus a human-readable message
// otherwise.

#ifndef ASAP_COMMON_STATUS_H_
#define ASAP_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace asap {

/// Machine-readable classification of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kNotImplemented = 6,
  kInternal = 7,
};

/// Returns a stable human-readable name for `code` (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or a (code, message) pair.
class Status {
 public:
  /// Constructs an OK status. Never allocates.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers mirroring the StatusCode enumerators.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The failure message; empty for OK statuses.
  const std::string& message() const;

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process if this status is not OK. For use at API
  /// boundaries where failure indicates a programming error.
  void Abort() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // nullptr <=> OK; keeps sizeof(Status) == sizeof(void*).
  std::unique_ptr<State> state_;
};

}  // namespace asap

#endif  // ASAP_COMMON_STATUS_H_
