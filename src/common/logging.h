// Minimal leveled logging to stderr.
//
// Usage: ASAP_LOG(INFO) << "searched " << n << " candidates";
// The default threshold is WARNING so library internals stay quiet in
// tests and benches; raise verbosity with SetLogLevel or by setting
// the ASAP_LOG_LEVEL environment variable before startup ("debug",
// "info", "warning", "error", or 0-3). Each line is emitted with a
// single write() so concurrent threads never interleave partial lines.

#ifndef ASAP_COMMON_LOGGING_H_
#define ASAP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace asap {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace asap

#define ASAP_LOG(severity)                                        \
  ::asap::internal::LogMessage(::asap::LogLevel::k##severity,     \
                               __FILE__, __LINE__)

#endif  // ASAP_COMMON_LOGGING_H_
