#include "common/logging.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace asap {

namespace {

/// Parses ASAP_LOG_LEVEL ("debug"/"info"/"warning"/"error", case
/// insensitive, or a bare 0-3). Unset/unparsable -> the quiet default.
int InitialLevelFromEnv() {
  const char* env = std::getenv("ASAP_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (env[0] >= '0' && env[0] <= '3' && env[1] == '\0') {
    return env[0] - '0';
  }
  // Compare on the first letter: debug/info/warn(ing)/error are
  // unambiguous; anything else keeps the default.
  switch (env[0] | 0x20) {
    case 'd':
      return static_cast<int>(LogLevel::kDebug);
    case 'i':
      return static_cast<int>(LogLevel::kInfo);
    case 'w':
      return static_cast<int>(LogLevel::kWarning);
    case 'e':
      return static_cast<int>(LogLevel::kError);
    default:
      return static_cast<int>(LogLevel::kWarning);
  }
}

std::atomic<int>& LevelAtom() {
  // Function-local so the env read happens on first use, after the
  // process environment is guaranteed set up (static-init order safe).
  static std::atomic<int> level{InitialLevelFromEnv()};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LevelAtom().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelAtom().load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               LevelAtom().load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    // Keep only the basename to stay readable.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  // Emit the whole line (terminator included) with write() calls on
  // the unbuffered fd rather than stdio streaming: concurrent wire
  // loops and shard workers each get an atomic-enough single syscall
  // per line, so lines cannot interleave mid-byte. Partial writes and
  // EINTR resume; any other error drops the rest (logging must never
  // throw or loop forever).
  stream_ << '\n';
  const std::string line = stream_.str();
  const char* p = line.data();
  size_t remaining = line.size();
  while (remaining > 0) {
    ssize_t n = ::write(STDERR_FILENO, p, remaining);
    if (n > 0) {
      p += n;
      remaining -= static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      break;
    }
  }
}

}  // namespace internal
}  // namespace asap
