// Result<T>: value-or-Status, the return type of fallible functions
// that produce a value (Arrow's Result / absl::StatusOr idiom).

#ifndef ASAP_COMMON_RESULT_H_
#define ASAP_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace asap {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// Typical use:
///
///   Result<SmoothingResult> r = Smooth(values, options);
///   if (!r.ok()) return r.status();
///   Use(r->window);
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, enables
  /// `return Status::InvalidArgument(...);`).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    ASAP_CHECK(!status_.ok());
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The error; Status::OK() when a value is present.
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    CheckOk();
    return *value_;
  }
  T& ValueOrDie() & {
    CheckOk();
    return *value_;
  }
  T ValueOrDie() && {
    CheckOk();
    return std::move(*value_);
  }

  /// Returns the value or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void CheckOk() const {
    if (ASAP_PREDICT_FALSE(!ok())) {
      status_.Abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace asap

#endif  // ASAP_COMMON_RESULT_H_
