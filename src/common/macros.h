// Core preprocessor utilities shared across libasap.
//
// Follows the Arrow/Google convention: invariant violations in release
// builds abort with a message (ASAP_CHECK); debug-only checks compile
// away in release builds (ASAP_DCHECK).

#ifndef ASAP_COMMON_MACROS_H_
#define ASAP_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define ASAP_STRINGIFY_IMPL(x) #x
#define ASAP_STRINGIFY(x) ASAP_STRINGIFY_IMPL(x)

#define ASAP_CONCAT_IMPL(a, b) a##b
#define ASAP_CONCAT(a, b) ASAP_CONCAT_IMPL(a, b)

#if defined(__GNUC__) || defined(__clang__)
#define ASAP_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define ASAP_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#else
#define ASAP_PREDICT_TRUE(x) (x)
#define ASAP_PREDICT_FALSE(x) (x)
#endif

/// Aborts the process if `condition` is false. Active in all build types;
/// use for programmer errors that must never ship (e.g. out-of-range
/// window sizes produced by internal search code).
#define ASAP_CHECK(condition)                                             \
  do {                                                                    \
    if (ASAP_PREDICT_FALSE(!(condition))) {                               \
      std::fprintf(stderr, "ASAP_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, ASAP_STRINGIFY(condition));                  \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define ASAP_CHECK_OP(lhs, rhs, op)                                       \
  do {                                                                    \
    if (ASAP_PREDICT_FALSE(!((lhs)op(rhs)))) {                            \
      std::fprintf(stderr, "ASAP_CHECK failed at %s:%d: %s %s %s\n",      \
                   __FILE__, __LINE__, ASAP_STRINGIFY(lhs),               \
                   ASAP_STRINGIFY(op), ASAP_STRINGIFY(rhs));              \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define ASAP_CHECK_EQ(a, b) ASAP_CHECK_OP(a, b, ==)
#define ASAP_CHECK_NE(a, b) ASAP_CHECK_OP(a, b, !=)
#define ASAP_CHECK_LT(a, b) ASAP_CHECK_OP(a, b, <)
#define ASAP_CHECK_LE(a, b) ASAP_CHECK_OP(a, b, <=)
#define ASAP_CHECK_GT(a, b) ASAP_CHECK_OP(a, b, >)
#define ASAP_CHECK_GE(a, b) ASAP_CHECK_OP(a, b, >=)

#ifdef NDEBUG
#define ASAP_DCHECK(condition) \
  do {                         \
  } while (false)
#else
#define ASAP_DCHECK(condition) ASAP_CHECK(condition)
#endif

/// Propagates a non-OK Status out of the enclosing function
/// (Arrow's ARROW_RETURN_NOT_OK idiom).
#define ASAP_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::asap::Status _st = (expr);                \
    if (ASAP_PREDICT_FALSE(!_st.ok())) {        \
      return _st;                               \
    }                                           \
  } while (false)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// otherwise returns the error Status from the enclosing function.
#define ASAP_ASSIGN_OR_RETURN(lhs, expr)                    \
  auto ASAP_CONCAT(_result_, __LINE__) = (expr);            \
  if (ASAP_PREDICT_FALSE(!ASAP_CONCAT(_result_, __LINE__)   \
                              .ok())) {                     \
    return ASAP_CONCAT(_result_, __LINE__).status();        \
  }                                                         \
  lhs = std::move(ASAP_CONCAT(_result_, __LINE__)).ValueOrDie()

#endif  // ASAP_COMMON_MACROS_H_
