// Series-to-raster plotting: Bresenham polylines over a value range.
//
// The pixel-error metric (Appendix B.1) compares rasterizations of the
// original and the reduced/smoothed series on the same canvas with the
// same y-range, exactly as a chart would draw them.

#ifndef ASAP_RENDER_RASTERIZE_H_
#define ASAP_RENDER_RASTERIZE_H_

#include <vector>

#include "render/canvas.h"

namespace asap {
namespace render {

/// Draws the line segment (x0, y0) -> (x1, y1) (inclusive endpoints)
/// with Bresenham's algorithm, clipping to the canvas.
void DrawLine(Canvas* canvas, long x0, long y0, long x1, long y1);

/// Value range used for the y-axis.
struct ValueRange {
  double lo = 0.0;
  double hi = 1.0;
};

/// Range spanning min/max of the series (padded slightly to keep the
/// extremes inside the raster).
ValueRange RangeOf(const std::vector<double>& values);

/// Range covering both series.
ValueRange RangeOf(const std::vector<double>& a, const std::vector<double>& b);

/// Plots `values` as a connected polyline: the i-th point maps to
/// x = round(i * (width-1) / (n-1)), y scaled into [0, height-1] with
/// `range` (values at range.hi map to the top row). Series with a
/// single point draw one pixel.
void PlotSeries(Canvas* canvas, const std::vector<double>& values,
                const ValueRange& range);

/// Convenience: rasterizes a series on a fresh canvas.
Canvas RasterizeSeries(const std::vector<double>& values, size_t width,
                       size_t height, const ValueRange& range);

/// Plots a polyline whose points carry explicit x-positions in
/// [0, x_max] (e.g. the retained indices of a reduced series); used so
/// M4 / line-simplification outputs rasterize at the correct pixels.
void PlotIndexedSeries(Canvas* canvas, const std::vector<double>& xs,
                       const std::vector<double>& ys, double x_max,
                       const ValueRange& range);

/// Per-column statistics of a raster — the measurement the perception
/// proxy consumes. Columns with no lit pixel report extent 0 and carry
/// the previous column's center (continuation, like a line chart).
struct ColumnStats {
  std::vector<double> center;  // mean lit row per column (in value units)
  std::vector<double> extent;  // lit row span per column, 0..1 of height
};

/// Extracts per-column center/extent from a canvas; centers are mapped
/// back into value units using `range`.
ColumnStats ComputeColumnStats(const Canvas& canvas, const ValueRange& range);

}  // namespace render
}  // namespace asap

#endif  // ASAP_RENDER_RASTERIZE_H_
