// Pixel error between the rendering of an original series and a
// reduced/smoothed representation (Appendix B.1 / Table 4).
//
// Both series are rasterized as 1-px polylines on the same canvas and
// y-range; the error is the Jaccard distance of the lit pixel sets:
//   1 - |A ∩ B| / |A ∪ B|.
// Identical plots score 0; disjoint plots score 1. This reproduces the
// paper's ordering (M4 nearly pixel-perfect, ASAP intentionally very
// lossy).

#ifndef ASAP_RENDER_PIXEL_ERROR_H_
#define ASAP_RENDER_PIXEL_ERROR_H_

#include <cstddef>
#include <vector>

#include "render/canvas.h"

namespace asap {
namespace render {

/// Rasterizes both series at width x height over their joint value
/// range and returns the Jaccard pixel distance in [0, 1]. Both
/// rasters are vertically dilated by `tolerance_px` before comparison
/// (1-px default: lines one pixel apart are near-identical visually).
double PixelError(const std::vector<double>& original,
                  const std::vector<double>& reduced, size_t width,
                  size_t height, size_t tolerance_px = 1);

/// Jaccard pixel distance of two prepared canvases (same dimensions),
/// with vertical dilation tolerance.
double CanvasPixelError(const Canvas& a, const Canvas& b,
                        size_t tolerance_px = 1);

}  // namespace render
}  // namespace asap

#endif  // ASAP_RENDER_PIXEL_ERROR_H_
