// A binary pixel canvas.
//
// ASAP co-designs with the display: the pixel raster is both the
// motivation for preaggregation (§4.4) and the measurement instrument
// for the pixel-error comparison against M4/PAA/line simplification
// (Appendix B.1 / Table 4).

#ifndef ASAP_RENDER_CANVAS_H_
#define ASAP_RENDER_CANVAS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace asap {
namespace render {

/// Fixed-size monochrome raster; (0, 0) is the top-left pixel.
class Canvas {
 public:
  Canvas(size_t width, size_t height);

  size_t width() const { return width_; }
  size_t height() const { return height_; }

  /// Sets pixel (x, y); out-of-bounds coordinates are ignored (clipped).
  void Set(long x, long y);

  /// True iff (x, y) is in bounds and lit.
  bool Get(long x, long y) const;

  /// Clears all pixels.
  void Clear();

  /// Number of lit pixels.
  size_t CountLit() const;

  /// Number of pixels lit in both this and other (same dimensions).
  size_t CountIntersection(const Canvas& other) const;

  /// Number of pixels lit in this or other (same dimensions).
  size_t CountUnion(const Canvas& other) const;

  /// Multi-line string with '#' for lit pixels (debugging aid).
  std::string ToString() const;

  /// Returns a copy with every lit pixel extended `radius` pixels up
  /// and down — the standard tolerance band when comparing 1-px line
  /// plots (a plot one pixel off should not count as fully disjoint).
  Canvas DilatedVertically(size_t radius) const;

 private:
  size_t Index(size_t x, size_t y) const { return y * width_ + x; }

  size_t width_;
  size_t height_;
  std::vector<bool> pixels_;
};

}  // namespace render
}  // namespace asap

#endif  // ASAP_RENDER_CANVAS_H_
