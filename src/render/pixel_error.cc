#include "render/pixel_error.h"

#include "common/macros.h"
#include "render/rasterize.h"

namespace asap {
namespace render {

double CanvasPixelError(const Canvas& a, const Canvas& b,
                        size_t tolerance_px) {
  const Canvas da =
      tolerance_px > 0 ? a.DilatedVertically(tolerance_px) : a;
  const Canvas db =
      tolerance_px > 0 ? b.DilatedVertically(tolerance_px) : b;
  const size_t uni = da.CountUnion(db);
  if (uni == 0) {
    return 0.0;
  }
  const size_t inter = da.CountIntersection(db);
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

double PixelError(const std::vector<double>& original,
                  const std::vector<double>& reduced, size_t width,
                  size_t height, size_t tolerance_px) {
  ASAP_CHECK(!original.empty());
  ASAP_CHECK(!reduced.empty());
  const ValueRange range = RangeOf(original, reduced);
  const Canvas a = RasterizeSeries(original, width, height, range);
  const Canvas b = RasterizeSeries(reduced, width, height, range);
  return CanvasPixelError(a, b, tolerance_px);
}

}  // namespace render
}  // namespace asap
