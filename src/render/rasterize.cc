#include "render/rasterize.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace asap {
namespace render {

void DrawLine(Canvas* canvas, long x0, long y0, long x1, long y1) {
  // Standard integer Bresenham over all octants.
  const long dx = std::labs(x1 - x0);
  const long dy = -std::labs(y1 - y0);
  const long sx = x0 < x1 ? 1 : -1;
  const long sy = y0 < y1 ? 1 : -1;
  long err = dx + dy;
  for (;;) {
    canvas->Set(x0, y0);
    if (x0 == x1 && y0 == y1) {
      break;
    }
    const long e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

ValueRange RangeOf(const std::vector<double>& values) {
  ASAP_CHECK(!values.empty());
  ValueRange range;
  range.lo = *std::min_element(values.begin(), values.end());
  range.hi = *std::max_element(values.begin(), values.end());
  if (range.hi <= range.lo) {
    range.lo -= 0.5;
    range.hi += 0.5;
  }
  return range;
}

ValueRange RangeOf(const std::vector<double>& a,
                   const std::vector<double>& b) {
  ValueRange ra = RangeOf(a);
  ValueRange rb = RangeOf(b);
  return ValueRange{std::min(ra.lo, rb.lo), std::max(ra.hi, rb.hi)};
}

namespace {

long YPixel(double value, const ValueRange& range, size_t height) {
  const double t = (value - range.lo) / (range.hi - range.lo);
  // range.hi maps to row 0 (top), range.lo to the bottom row.
  const double y = (1.0 - t) * static_cast<double>(height - 1);
  return std::lround(y);
}

}  // namespace

void PlotSeries(Canvas* canvas, const std::vector<double>& values,
                const ValueRange& range) {
  ASAP_CHECK(canvas != nullptr);
  if (values.empty()) {
    return;
  }
  const size_t n = values.size();
  const size_t width = canvas->width();
  const size_t height = canvas->height();
  if (n == 1) {
    canvas->Set(0, YPixel(values[0], range, height));
    return;
  }
  long prev_x = 0;
  long prev_y = YPixel(values[0], range, height);
  for (size_t i = 1; i < n; ++i) {
    const long x = std::lround(static_cast<double>(i) *
                               static_cast<double>(width - 1) /
                               static_cast<double>(n - 1));
    const long y = YPixel(values[i], range, height);
    DrawLine(canvas, prev_x, prev_y, x, y);
    prev_x = x;
    prev_y = y;
  }
}

Canvas RasterizeSeries(const std::vector<double>& values, size_t width,
                       size_t height, const ValueRange& range) {
  Canvas canvas(width, height);
  PlotSeries(&canvas, values, range);
  return canvas;
}

void PlotIndexedSeries(Canvas* canvas, const std::vector<double>& xs,
                       const std::vector<double>& ys, double x_max,
                       const ValueRange& range) {
  ASAP_CHECK(canvas != nullptr);
  ASAP_CHECK_EQ(xs.size(), ys.size());
  if (xs.empty()) {
    return;
  }
  const size_t width = canvas->width();
  const size_t height = canvas->height();
  const double x_scale =
      x_max > 0.0 ? static_cast<double>(width - 1) / x_max : 0.0;
  long prev_x = std::lround(xs[0] * x_scale);
  long prev_y = YPixel(ys[0], range, height);
  if (xs.size() == 1) {
    canvas->Set(prev_x, prev_y);
    return;
  }
  for (size_t i = 1; i < xs.size(); ++i) {
    const long x = std::lround(xs[i] * x_scale);
    const long y = YPixel(ys[i], range, height);
    DrawLine(canvas, prev_x, prev_y, x, y);
    prev_x = x;
    prev_y = y;
  }
}

ColumnStats ComputeColumnStats(const Canvas& canvas, const ValueRange& range) {
  ColumnStats stats;
  const size_t width = canvas.width();
  const size_t height = canvas.height();
  stats.center.resize(width, 0.0);
  stats.extent.resize(width, 0.0);
  double prev_center = 0.5 * (range.lo + range.hi);
  for (size_t x = 0; x < width; ++x) {
    long first = -1;
    long last = -1;
    long sum = 0;
    long count = 0;
    for (size_t y = 0; y < height; ++y) {
      if (canvas.Get(static_cast<long>(x), static_cast<long>(y))) {
        if (first < 0) {
          first = static_cast<long>(y);
        }
        last = static_cast<long>(y);
        sum += static_cast<long>(y);
        ++count;
      }
    }
    if (count == 0) {
      stats.center[x] = prev_center;
      stats.extent[x] = 0.0;
      continue;
    }
    const double mean_row =
        static_cast<double>(sum) / static_cast<double>(count);
    // Invert the row-0-at-top convention back into value units.
    const double frac = 1.0 - mean_row / static_cast<double>(height - 1);
    stats.center[x] = range.lo + frac * (range.hi - range.lo);
    stats.extent[x] = static_cast<double>(last - first + 1) /
                      static_cast<double>(height);
    prev_center = stats.center[x];
  }
  return stats;
}

}  // namespace render
}  // namespace asap
