#include "render/canvas.h"

#include <algorithm>

#include "common/macros.h"

namespace asap {
namespace render {

Canvas::Canvas(size_t width, size_t height)
    : width_(width), height_(height), pixels_(width * height, false) {
  ASAP_CHECK_GE(width, 1u);
  ASAP_CHECK_GE(height, 1u);
}

void Canvas::Set(long x, long y) {
  if (x < 0 || y < 0 || static_cast<size_t>(x) >= width_ ||
      static_cast<size_t>(y) >= height_) {
    return;
  }
  pixels_[Index(static_cast<size_t>(x), static_cast<size_t>(y))] = true;
}

bool Canvas::Get(long x, long y) const {
  if (x < 0 || y < 0 || static_cast<size_t>(x) >= width_ ||
      static_cast<size_t>(y) >= height_) {
    return false;
  }
  return pixels_[Index(static_cast<size_t>(x), static_cast<size_t>(y))];
}

void Canvas::Clear() { pixels_.assign(pixels_.size(), false); }

size_t Canvas::CountLit() const {
  size_t count = 0;
  for (bool p : pixels_) {
    count += p ? 1 : 0;
  }
  return count;
}

size_t Canvas::CountIntersection(const Canvas& other) const {
  ASAP_CHECK_EQ(width_, other.width_);
  ASAP_CHECK_EQ(height_, other.height_);
  size_t count = 0;
  for (size_t i = 0; i < pixels_.size(); ++i) {
    count += (pixels_[i] && other.pixels_[i]) ? 1 : 0;
  }
  return count;
}

size_t Canvas::CountUnion(const Canvas& other) const {
  ASAP_CHECK_EQ(width_, other.width_);
  ASAP_CHECK_EQ(height_, other.height_);
  size_t count = 0;
  for (size_t i = 0; i < pixels_.size(); ++i) {
    count += (pixels_[i] || other.pixels_[i]) ? 1 : 0;
  }
  return count;
}

Canvas Canvas::DilatedVertically(size_t radius) const {
  Canvas out(width_, height_);
  for (size_t y = 0; y < height_; ++y) {
    for (size_t x = 0; x < width_; ++x) {
      if (!pixels_[Index(x, y)]) {
        continue;
      }
      const size_t y_lo = y >= radius ? y - radius : 0;
      const size_t y_hi = std::min(height_ - 1, y + radius);
      for (size_t yy = y_lo; yy <= y_hi; ++yy) {
        out.pixels_[out.Index(x, yy)] = true;
      }
    }
  }
  return out;
}

std::string Canvas::ToString() const {
  std::string out;
  out.reserve((width_ + 1) * height_);
  for (size_t y = 0; y < height_; ++y) {
    for (size_t x = 0; x < width_; ++x) {
      out += pixels_[Index(x, y)] ? '#' : '.';
    }
    out += '\n';
  }
  return out;
}

}  // namespace render
}  // namespace asap
