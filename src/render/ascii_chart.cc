#include "render/ascii_chart.h"

#include <cstdio>

#include "render/canvas.h"
#include "render/rasterize.h"

namespace asap {
namespace render {

namespace {

std::string RenderWithAxis(const std::vector<double>& values,
                           const ValueRange& range,
                           const AsciiChartOptions& options) {
  Canvas canvas(options.width, options.height);
  PlotSeries(&canvas, values, range);

  std::string out;
  char label[32];
  for (size_t y = 0; y < options.height; ++y) {
    // Label the top, middle and bottom rows with their values.
    const double frac =
        1.0 - static_cast<double>(y) / static_cast<double>(options.height - 1);
    const double value = range.lo + frac * (range.hi - range.lo);
    if (y == 0 || y == options.height / 2 || y + 1 == options.height) {
      std::snprintf(label, sizeof(label), "%8.2f |", value);
    } else {
      std::snprintf(label, sizeof(label), "         |");
    }
    out += label;
    for (size_t x = 0; x < options.width; ++x) {
      out += canvas.Get(static_cast<long>(x), static_cast<long>(y))
                 ? options.mark
                 : ' ';
    }
    out += '\n';
  }
  out += "         +";
  out.append(options.width, '-');
  out += '\n';
  return out;
}

}  // namespace

std::string AsciiChart(const std::vector<double>& values,
                       const AsciiChartOptions& options) {
  std::string out;
  if (!options.title.empty()) {
    out += options.title;
    out += '\n';
  }
  if (values.empty()) {
    out += "(empty series)\n";
    return out;
  }
  out += RenderWithAxis(values, RangeOf(values), options);
  return out;
}

std::string AsciiChartPair(const std::vector<double>& top,
                           const std::string& top_label,
                           const std::vector<double>& bottom,
                           const std::string& bottom_label,
                           const AsciiChartOptions& options) {
  std::string out;
  if (!options.title.empty()) {
    out += options.title;
    out += '\n';
  }
  if (top.empty() || bottom.empty()) {
    out += "(empty series)\n";
    return out;
  }
  const ValueRange range = RangeOf(top, bottom);
  out += top_label;
  out += '\n';
  out += RenderWithAxis(top, range, options);
  out += bottom_label;
  out += '\n';
  out += RenderWithAxis(bottom, range, options);
  return out;
}

}  // namespace render
}  // namespace asap
