// Terminal-friendly charts for the example programs: the "metrics
// console" of the paper's DevOps case study, in ASCII.

#ifndef ASAP_RENDER_ASCII_CHART_H_
#define ASAP_RENDER_ASCII_CHART_H_

#include <string>
#include <vector>

namespace asap {
namespace render {

/// Chart appearance.
struct AsciiChartOptions {
  size_t width = 72;   // plot columns (excluding axis labels)
  size_t height = 14;  // plot rows
  char mark = '*';
  /// Optional title printed above the chart.
  std::string title;
};

/// Renders the series as an ASCII line chart with a y-axis label column.
std::string AsciiChart(const std::vector<double>& values,
                       const AsciiChartOptions& options = {});

/// Renders two series stacked (same y-range), e.g. raw vs. ASAP —
/// the layout of the paper's Figure 1/2/3 case studies.
std::string AsciiChartPair(const std::vector<double>& top,
                           const std::string& top_label,
                           const std::vector<double>& bottom,
                           const std::string& bottom_label,
                           const AsciiChartOptions& options = {});

}  // namespace render
}  // namespace asap

#endif  // ASAP_RENDER_ASCII_CHART_H_
