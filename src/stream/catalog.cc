#include "stream/catalog.h"

#include <cstring>
#include <mutex>

#include "common/macros.h"

namespace asap {
namespace stream {

bool IsValidSeriesName(std::string_view name) {
  if (name.empty() || name.size() > kMaxSeriesNameBytes) {
    return false;
  }
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x21 || u > 0x7E) {
      return false;
    }
  }
  return true;
}

SeriesCatalog::SeriesCatalog(size_t arena_block_bytes)
    : arena_block_bytes_(arena_block_bytes) {
  // A block must hold the longest legal name, or ArenaStore could loop
  // allocating empty blocks forever.
  ASAP_CHECK_GE(arena_block_bytes_, kMaxSeriesNameBytes);
}

std::string_view SeriesCatalog::ArenaStore(std::string_view name) {
  if (blocks_.empty() || arena_block_bytes_ - block_used_ < name.size()) {
    blocks_.push_back(std::make_unique<char[]>(arena_block_bytes_));
    block_used_ = 0;
  }
  char* dst = blocks_.back().get() + block_used_;
  std::memcpy(dst, name.data(), name.size());
  block_used_ += name.size();
  arena_bytes_ += name.size();
  return std::string_view(dst, name.size());
}

SeriesId SeriesCatalog::Intern(std::string_view name) {
  ASAP_CHECK(IsValidSeriesName(name));
  {
    // Steady state: the name exists — a shared-lock map probe, no
    // copies, no allocation.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) {
      return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Double-check: another thread may have interned it between locks.
  auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  const std::string_view stored = ArenaStore(name);
  const SeriesId id = static_cast<SeriesId>(names_.size());
  names_.push_back(stored);
  index_.emplace(stored, id);
  return id;
}

std::string_view SeriesCatalog::NameOf(SeriesId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ASAP_CHECK_LT(static_cast<size_t>(id), names_.size());
  return names_[id];
}

std::optional<SeriesId> SeriesCatalog::FindId(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

size_t SeriesCatalog::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_.size();
}

size_t SeriesCatalog::arena_blocks() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return blocks_.size();
}

size_t SeriesCatalog::arena_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return arena_bytes_;
}

bool GlobMatch(std::string_view pattern, std::string_view name) {
  constexpr size_t kNone = static_cast<size_t>(-1);
  size_t p = 0;
  size_t n = 0;
  size_t star_p = kNone;  // position after the most recent '*'
  size_t star_n = 0;      // name position that '*' has consumed up to
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star_p = ++p;
      star_n = n;
    } else if (star_p != kNone) {
      // Backtrack: let the last '*' swallow one more byte.
      p = star_p;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

SeriesSelector SeriesSelector::All() {
  return SeriesSelector(SelectorKind::kAll, std::string());
}

SeriesSelector SeriesSelector::Glob(std::string_view pattern) {
  return SeriesSelector(SelectorKind::kGlob, std::string(pattern));
}

Result<SeriesSelector> SeriesSelector::Regex(std::string_view pattern) {
  SeriesSelector selector(SelectorKind::kRegex, std::string(pattern));
  try {
    selector.regex_.assign(selector.pattern_,
                           std::regex_constants::ECMAScript |
                               std::regex_constants::optimize);
  } catch (const std::regex_error& e) {
    return Status::InvalidArgument(std::string("bad series regex: ") +
                                   e.what());
  }
  return selector;
}

bool SeriesSelector::Matches(std::string_view name) const {
  switch (kind_) {
    case SelectorKind::kAll:
      return true;
    case SelectorKind::kGlob:
      return GlobMatch(pattern_, name);
    case SelectorKind::kRegex:
      // Iterator form: anchored whole-name match, no match_results, so
      // steady-state matching does not allocate result storage.
      return std::regex_match(name.begin(), name.end(), regex_);
  }
  return false;
}

void SeriesSelector::SelectInto(const SeriesCatalog& catalog,
                                std::vector<SeriesId>* out) const {
  out->clear();
  const size_t n = catalog.size();
  for (SeriesId id = 0; static_cast<size_t>(id) < n; ++id) {
    if (Matches(catalog.NameOf(id))) {
      out->push_back(id);
    }
  }
}

std::vector<SeriesId> SeriesSelector::Select(
    const SeriesCatalog& catalog) const {
  std::vector<SeriesId> ids;
  SelectInto(catalog, &ids);
  return ids;
}

}  // namespace stream
}  // namespace asap
