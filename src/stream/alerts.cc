#include "stream/alerts.h"

#include <cmath>

#include "common/macros.h"
#include "stats/descriptive.h"

namespace asap {
namespace stream {

namespace {

// Median absolute deviation scaled to the normal-consistent sigma.
double Mad(const std::vector<double>& v, double median) {
  std::vector<double> abs_dev(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    abs_dev[i] = std::fabs(v[i] - median);
  }
  return 1.4826 * stats::Median(std::move(abs_dev));
}

}  // namespace

Result<std::vector<Alert>> FindDeviations(const std::vector<double>& series,
                                          const AlertOptions& options) {
  if (series.size() < 8) {
    return Status::InvalidArgument(
        "need at least 8 points to detect deviations");
  }
  if (options.threshold_sigmas <= 0.0) {
    return Status::InvalidArgument("threshold_sigmas must be positive");
  }

  double center = 0.0;
  double scale = 0.0;
  if (options.robust_baseline) {
    center = stats::Median(series);
    scale = Mad(series, center);
  } else {
    center = stats::Mean(series);
    scale = stats::StdDev(series);
  }
  std::vector<Alert> alerts;
  if (scale <= 0.0) {
    return alerts;  // perfectly flat series: nothing can deviate
  }

  const size_t min_duration = std::max<size_t>(options.min_duration, 1);
  size_t run_begin = 0;
  double run_peak = 0.0;
  bool in_run = false;
  for (size_t i = 0; i <= series.size(); ++i) {
    double z = 0.0;
    bool beyond = false;
    if (i < series.size()) {
      z = (series[i] - center) / scale;
      beyond = std::fabs(z) >= options.threshold_sigmas;
    }
    if (beyond && !in_run) {
      in_run = true;
      run_begin = i;
      run_peak = z;
    } else if (beyond && in_run) {
      if (std::fabs(z) > std::fabs(run_peak)) {
        run_peak = z;
      }
      // Direction change splits the run.
      if ((z > 0) != (run_peak > 0)) {
        if (i - run_begin >= min_duration) {
          alerts.push_back(Alert{run_begin, i, run_peak, run_peak > 0});
        }
        run_begin = i;
        run_peak = z;
      }
    } else if (!beyond && in_run) {
      in_run = false;
      if (i - run_begin >= min_duration) {
        alerts.push_back(Alert{run_begin, i, run_peak, run_peak > 0});
      }
    }
  }
  return alerts;
}

Result<SmoothedAlertMonitor> SmoothedAlertMonitor::Create(
    const StreamingOptions& stream_options,
    const AlertOptions& alert_options) {
  if (alert_options.threshold_sigmas <= 0.0) {
    return Status::InvalidArgument("threshold_sigmas must be positive");
  }
  ASAP_ASSIGN_OR_RETURN(StreamingAsap asap,
                        StreamingAsap::Create(stream_options));
  return SmoothedAlertMonitor(std::move(asap), alert_options);
}

bool SmoothedAlertMonitor::Push(double x) {
  if (!asap_.Push(x)) {
    return false;
  }
  const std::vector<double>& frame = asap_.frame().series;
  if (frame.size() < 8) {
    alerts_.clear();
    return false;
  }
  Result<std::vector<Alert>> found = FindDeviations(frame, options_);
  alerts_ = found.ok() ? std::move(found).ValueOrDie() : std::vector<Alert>{};
  return !alerts_.empty();
}

}  // namespace stream
}  // namespace asap
