// Deviation alerting on smoothed series — the paper's stated next step
// (§7: "further integrating ASAP with advanced analytics tasks
// including time series classification and alerting"), and its §1
// motivation (the electrical utility watching for "sub-threshold"
// systematic shifts that raw-value alarms miss).
//
// The detector consumes ASAP's *smoothed* output: because smoothing has
// removed small-scale variance while preserving large deviations,
// z-score thresholds on the smoothed series fire on systematic shifts
// at a fraction of the threshold raw-value alarms would need.

#ifndef ASAP_STREAM_ALERTS_H_
#define ASAP_STREAM_ALERTS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "core/streaming_asap.h"

namespace asap {
namespace stream {

/// Detection configuration.
struct AlertOptions {
  /// How many robust standard units a sustained deviation must reach.
  double threshold_sigmas = 3.0;
  /// Minimum run length (in smoothed points) before a deviation counts
  /// as an alert — single-point excursions are kept out.
  size_t min_duration = 3;
  /// Use median/MAD (robust) instead of mean/stddev for the baseline.
  bool robust_baseline = true;
};

/// A detected sustained deviation in a smoothed series.
struct Alert {
  /// Span in the smoothed series's indices, [begin, end).
  size_t begin = 0;
  size_t end = 0;
  /// Signed peak z-score within the span (sign = direction).
  double peak_z = 0.0;
  /// True if the deviation is above the baseline.
  bool is_high = false;

  size_t Duration() const { return end - begin; }
};

/// Scans a (smoothed) series for sustained deviations beyond the
/// threshold. Fails on series shorter than 8 points.
Result<std::vector<Alert>> FindDeviations(const std::vector<double>& series,
                                          const AlertOptions& options = {});

/// Streaming wrapper: feeds raw points to StreamingAsap and evaluates
/// the detector against each refreshed frame.
class SmoothedAlertMonitor {
 public:
  static Result<SmoothedAlertMonitor> Create(
      const StreamingOptions& stream_options,
      const AlertOptions& alert_options = {});

  /// Pushes one raw point; returns true iff the frame refreshed AND
  /// the refreshed frame contains at least one active alert.
  bool Push(double x);

  /// Alerts found in the most recent refreshed frame (spans are in
  /// frame coordinates).
  const std::vector<Alert>& current_alerts() const { return alerts_; }

  const StreamingAsap& asap() const { return asap_; }

 private:
  SmoothedAlertMonitor(StreamingAsap asap, const AlertOptions& options)
      : asap_(std::move(asap)), options_(options) {}

  StreamingAsap asap_;
  AlertOptions options_;
  std::vector<Alert> alerts_;
};

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_ALERTS_H_
