#include "stream/source.h"

#include <algorithm>

#include "common/macros.h"

namespace asap {
namespace stream {

VectorSource::VectorSource(std::vector<double> values)
    : values_(std::move(values)) {}

size_t VectorSource::NextBatch(size_t max_points, std::vector<double>* out) {
  ASAP_CHECK(out != nullptr);
  const size_t n = std::min(max_points, values_.size() - position_);
  out->insert(out->end(), values_.begin() + position_,
              values_.begin() + position_ + n);
  position_ += n;
  return n;
}

LoopingSource::LoopingSource(std::vector<double> values, size_t total_points)
    : values_(std::move(values)), total_points_(total_points) {
  ASAP_CHECK(!values_.empty());
}

size_t LoopingSource::NextBatch(size_t max_points, std::vector<double>* out) {
  ASAP_CHECK(out != nullptr);
  size_t produced = 0;
  while (produced < max_points && emitted_ < total_points_) {
    out->push_back(values_[emitted_ % values_.size()]);
    ++emitted_;
    ++produced;
  }
  return produced;
}

}  // namespace stream
}  // namespace asap
