#include "stream/source.h"

#include <algorithm>

#include "common/macros.h"

namespace asap {
namespace stream {

VectorSource::VectorSource(std::vector<double> values)
    : values_(std::move(values)) {}

size_t VectorSource::NextBatch(size_t max_points, std::vector<double>* out) {
  ASAP_CHECK(out != nullptr);
  const size_t n = std::min(max_points, values_.size() - position_);
  out->insert(out->end(), values_.begin() + position_,
              values_.begin() + position_ + n);
  position_ += n;
  return n;
}

LoopingSource::LoopingSource(std::vector<double> values, size_t total_points)
    : values_(std::move(values)), total_points_(total_points) {
  ASAP_CHECK(!values_.empty());
}

size_t LoopingSource::NextBatch(size_t max_points, std::vector<double>* out) {
  ASAP_CHECK(out != nullptr);
  size_t produced = 0;
  while (produced < max_points &&
         (total_points_ == 0 || emitted_ < total_points_)) {
    out->push_back(values_[emitted_ % values_.size()]);
    ++emitted_;
    ++produced;
  }
  return produced;
}

TaggedSource::TaggedSource(SeriesCatalog* catalog, std::string_view name,
                           std::unique_ptr<Source> inner)
    : series_id_(0), inner_(std::move(inner)) {
  ASAP_CHECK(catalog != nullptr);
  ASAP_CHECK(inner_ != nullptr);
  series_id_ = catalog->Intern(name);
}

size_t TaggedSource::NextBatch(size_t max_records, RecordBatch* out) {
  ASAP_CHECK(out != nullptr);
  scratch_.clear();
  const size_t n = inner_->NextBatch(max_records, &scratch_);
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) {
    out->push_back(Record{series_id_, scratch_[i]});
  }
  return n;
}

InterleavingMultiSource::InterleavingMultiSource(SeriesCatalog* catalog)
    : catalog_(catalog) {
  ASAP_CHECK(catalog_ != nullptr);
}

void InterleavingMultiSource::Add(std::string_view name,
                                  std::unique_ptr<Source> source) {
  ASAP_CHECK(source != nullptr);
  const SeriesId series_id = catalog_->Intern(name);
  for (const Entry& e : entries_) {
    ASAP_CHECK(e.id != series_id);  // duplicate name across Add calls
  }
  entries_.push_back(Entry{series_id, std::move(source)});
}

void InterleavingMultiSource::AddVector(std::string_view name,
                                        std::vector<double> values) {
  Add(name, std::make_unique<VectorSource>(std::move(values)));
}

void InterleavingMultiSource::AddLooping(std::string_view name,
                                         std::vector<double> values,
                                         size_t total_points) {
  Add(name,
      std::make_unique<LoopingSource>(std::move(values), total_points));
}

void InterleavingMultiSource::StampTimestamps(int64_t epoch, int64_t tick) {
  ASAP_CHECK_GE(tick, 1);
  stamp_ = true;
  stamp_epoch_ = epoch;
  stamp_tick_ = tick;
}

size_t InterleavingMultiSource::NextBatch(size_t max_records,
                                          RecordBatch* out) {
  ASAP_CHECK(out != nullptr);
  if (entries_.empty() || max_records == 0) {
    return 0;
  }
  size_t produced = 0;
  size_t consecutive_dry = 0;
  while (produced < max_records && consecutive_dry < entries_.size()) {
    Entry& e = entries_[cursor_];
    cursor_ = (cursor_ + 1) % entries_.size();
    if (e.exhausted) {
      ++consecutive_dry;
      continue;
    }
    // Deal this series an equal share of the remaining budget (at
    // least one point) so one chatty series cannot starve the rest.
    const size_t live = entries_.size() - exhausted_count_;
    const size_t share =
        std::max<size_t>((max_records - produced) / std::max<size_t>(live, 1),
                         1);
    scratch_.clear();
    const size_t n = e.source->NextBatch(share, &scratch_);
    if (n == 0) {
      e.exhausted = true;
      ++exhausted_count_;
      ++consecutive_dry;
      continue;
    }
    consecutive_dry = 0;
    out->reserve(out->size() + n);
    for (size_t i = 0; i < n; ++i) {
      Record r{e.id, scratch_[i]};
      if (stamp_) {
        r.ts = stamp_epoch_ + e.emitted * stamp_tick_;
      }
      e.emitted += 1;
      out->push_back(r);
    }
    produced += n;
  }
  return produced;
}

size_t InterleavingMultiSource::TotalPoints() const {
  size_t total = 0;
  for (const Entry& e : entries_) {
    const size_t n = e.source->TotalPoints();
    if (n == 0) {
      // Any member reporting 0 (unbounded or unknown) makes the fleet
      // total unknown.
      return 0;
    }
    total += n;
  }
  return total;
}

RecordBatch InterleaveToRecords(
    SeriesCatalog* catalog, const std::vector<std::string>& names,
    const std::vector<std::vector<double>>& series) {
  ASAP_CHECK(catalog != nullptr);
  ASAP_CHECK_EQ(names.size(), series.size());
  std::vector<SeriesId> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) {
    ids.push_back(catalog->Intern(name));
  }
  RecordBatch records;
  size_t remaining = 0;
  for (const auto& s : series) {
    remaining += s.size();
  }
  records.reserve(remaining);
  std::vector<size_t> cursor(series.size(), 0);
  while (remaining > 0) {
    for (size_t i = 0; i < series.size(); ++i) {
      if (cursor[i] < series[i].size()) {
        records.push_back(Record{ids[i], series[i][cursor[i]++]});
        --remaining;
      }
    }
  }
  return records;
}

RecordBatch InterleaveToRecordsTimed(
    SeriesCatalog* catalog, const std::vector<std::string>& names,
    const std::vector<std::vector<double>>& series, int64_t epoch,
    int64_t tick) {
  ASAP_CHECK_GE(tick, 1);
  RecordBatch records = InterleaveToRecords(catalog, names, series);
  // The round-robin deal visits each live series once per turn, so a
  // record's sample index within its series is recoverable with one
  // counter per series.
  std::vector<int64_t> emitted(series.size(), 0);
  std::vector<SeriesId> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) {
    ids.push_back(catalog->Intern(name));
  }
  for (Record& r : records) {
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == r.series_id) {
        r.ts = epoch + emitted[i] * tick;
        emitted[i] += 1;
        break;
      }
    }
  }
  return records;
}

}  // namespace stream
}  // namespace asap
