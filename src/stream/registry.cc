#include "stream/registry.h"

#include <algorithm>

namespace asap {
namespace stream {

StreamingAsap& SeriesRegistry::GetOrCreate(SeriesId id) {
  auto it = series_.find(id);
  if (it == series_.end()) {
    it = series_.emplace(id, StreamingAsap::Create(options_).ValueOrDie())
             .first;
  }
  return it->second;
}

StreamingAsap* SeriesRegistry::Find(SeriesId id) {
  auto it = series_.find(id);
  return it == series_.end() ? nullptr : &it->second;
}

const StreamingAsap* SeriesRegistry::Find(SeriesId id) const {
  auto it = series_.find(id);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<SeriesId> SeriesRegistry::Ids() const {
  std::vector<SeriesId> ids;
  ids.reserve(series_.size());
  for (const auto& entry : series_) {
    ids.push_back(entry.first);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace stream
}  // namespace asap
