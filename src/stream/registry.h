// Per-shard series table, in the mold of Akumuli's query pipeline
// nodes: each node owns a map from series id to per-series operator
// state, created lazily the first time a series is seen, from one
// shared factory configuration. The sharded fleet engine gives every
// worker shard its own registry, so lookups and operator state never
// cross threads.

#ifndef ASAP_STREAM_REGISTRY_H_
#define ASAP_STREAM_REGISTRY_H_

#include <unordered_map>
#include <vector>

#include "core/streaming_asap.h"
#include "stream/record.h"

namespace asap {
namespace stream {

/// Lazily-populated table of per-series StreamingAsap operators.
/// Not thread-safe: the owner (one worker shard) serializes access.
class SeriesRegistry {
 public:
  /// `options` is the factory configuration every lazily-created
  /// operator is built from. Must be valid per StreamingAsap::Create
  /// (the fleet engine validates it once up front).
  explicit SeriesRegistry(const StreamingOptions& options)
      : options_(options) {}

  /// Returns the operator for `id`, creating it on first sight.
  StreamingAsap& GetOrCreate(SeriesId id);

  /// Returns the operator for `id`, or nullptr if never seen.
  StreamingAsap* Find(SeriesId id);
  const StreamingAsap* Find(SeriesId id) const;

  /// Number of distinct series seen.
  size_t size() const { return series_.size(); }

  /// All series ids seen, ascending (stable ordering for reports).
  std::vector<SeriesId> Ids() const;

  /// Calls fn(SeriesId, const StreamingAsap&) for every series, in
  /// unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& entry : series_) {
      fn(entry.first, entry.second);
    }
  }

  const StreamingOptions& options() const { return options_; }

 private:
  StreamingOptions options_;
  std::unordered_map<SeriesId, StreamingAsap> series_;
};

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_REGISTRY_H_
