// Per-shard reordering sequencer, in the mold of Akumuli's ingestion
// sequencer: a bounded time-order staging area between the shard
// queue and the streaming operators.
//
// Why it exists: timed pane mode (StreamingOptions::pane_width_ticks)
// stamps panes from record timestamps, and PaneBuffer::PushTimed
// closes a pane when a point of a *different* time bucket arrives. A
// collector fleet delivers records only approximately in time order —
// network interleaving and wall-clock skew reorder them — and feeding
// a timed pane buffer out-of-order would thrash pane commits (the
// arrival-order pane-stamping bug class this sequencer fixes).
//
// Model: records are staged in sorted runs (a batch is sorted once,
// then appended to a run it extends or opens a new one); a watermark
// tracks the maximum timestamp ever pushed, advanced per record in
// arrival order. A record more than horizon ticks behind the
// watermark at its own arrival is *late* — counted per series and
// dropped, never emitted (a record only raises the watermark, so
// in-order input is never late, whatever its span). Everything with ts <= watermark - horizon is safe to
// release (nothing older can arrive any more, by the late rule) and
// is merge-emitted across runs in (ts, arrival) order. Flush releases
// the remainder at end of stream.
//
// Emission is therefore globally non-decreasing in ts, and two input
// orders that are permutations of each other within the horizon emit
// the identical sequence — the property determinism-under-skew parity
// tests pin.
//
// Not thread-safe; each shard worker owns one instance.

#ifndef ASAP_STREAM_SEQUENCER_H_
#define ASAP_STREAM_SEQUENCER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/record.h"

namespace asap {
namespace stream {

class Sequencer {
 public:
  /// `horizon_ticks`: the reordering window. A record is accepted as
  /// long as its timestamp is within horizon_ticks of the newest
  /// timestamp seen; older records are dropped as late. 0 disables
  /// sequencing entirely: Push forwards records in arrival order
  /// verbatim (bitwise the pre-sequencer path) and nothing is ever
  /// late.
  explicit Sequencer(int64_t horizon_ticks);

  /// Stages records, drops late ones, and appends every record whose
  /// timestamp has passed out of the reordering horizon to `out` in
  /// (ts, arrival) order. Returns the number of records appended.
  size_t Push(const Record* records, size_t n, RecordBatch* out);

  /// Releases all still-staged records to `out` in (ts, arrival)
  /// order (end of stream). Returns the number appended. The
  /// sequencer remains usable; the watermark and late rule persist.
  size_t Flush(RecordBatch* out);

  /// Records accepted (staged or passed through) so far.
  uint64_t records_in() const { return records_in_; }
  /// Records emitted to out so far.
  uint64_t emitted() const { return emitted_; }
  /// Records dropped as late (older than watermark - horizon).
  uint64_t late_dropped() const { return late_dropped_; }
  /// Late drops per series (empty until the first drop).
  const std::unordered_map<SeriesId, uint64_t>& late_by_series() const {
    return late_by_series_;
  }
  /// Records currently staged.
  size_t buffered() const { return records_in_ - emitted_; }
  /// Maximum timestamp ever pushed (INT64_MIN before the first).
  int64_t watermark() const { return watermark_; }
  int64_t horizon_ticks() const { return horizon_; }

 private:
  struct Item {
    Record rec;
    uint64_t seq = 0;  // arrival order, the tie-break at equal ts
  };
  /// One sorted run: items[head..) are pending, sorted by (ts, seq).
  struct Run {
    std::vector<Item> items;
    size_t head = 0;
  };

  /// Appends staged items with ts <= floor to out, merged across runs
  /// in (ts, seq) order; consumed runs are dropped.
  size_t EmitUpTo(int64_t floor, RecordBatch* out);

  int64_t horizon_;
  int64_t watermark_;
  uint64_t next_seq_ = 0;
  uint64_t records_in_ = 0;
  uint64_t emitted_ = 0;
  uint64_t late_dropped_ = 0;
  std::vector<Run> runs_;
  std::vector<Item> scratch_;  // per-Push sort buffer, capacity reused
  std::unordered_map<SeriesId, uint64_t> late_by_series_;
};

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_SEQUENCER_H_
