// SeriesCatalog: the fleet's name table. Operators watch *named*
// metrics ("server load over time", paper §1–2) — "host-07/cpu", not
// an integer a caller minted by hand. The catalog interns each name
// once into an arena-backed string pool (Akumuli stringpool-style:
// names are appended to fixed-size blocks and never move, so a
// returned string_view is stable for the catalog's lifetime) and hands
// back a dense internal SeriesId. Ids stay uint32_t inside the engine
// (hash sharding, registry keys, binary wire frames) but are an
// implementation detail of the catalog — public APIs speak names.
//
// Thread model: many threads intern and resolve concurrently (the
// engine's producer interns wire names while dashboard readers resolve
// ids back to names through FleetView). Reads take a shared lock;
// only a first-sight intern takes the exclusive lock, so the
// steady-state path — every name already interned — is shared-lock
// lookups with zero allocation.

#ifndef ASAP_STREAM_CATALOG_H_
#define ASAP_STREAM_CATALOG_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <regex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "stream/record.h"

namespace asap {
namespace stream {

/// Longest series name the catalog (and the wire protocol) accepts.
constexpr size_t kMaxSeriesNameBytes = 256;

/// A valid series name is 1..kMaxSeriesNameBytes bytes of printable
/// ASCII excluding space ([0x21, 0x7E]). The charset makes names safe
/// as single tokens on the text wire protocol, in logs, and on
/// dashboards; it also guarantees a name can never begin with a
/// binary frame magic byte.
bool IsValidSeriesName(std::string_view name);

/// Name -> id interning table over an arena string pool.
class SeriesCatalog {
 public:
  /// Bytes per arena block. One block holds dozens-to-hundreds of
  /// names, so the intern path allocates at most once per that many
  /// first-sight names (and never for names already interned).
  static constexpr size_t kDefaultArenaBlockBytes = 16 * 1024;

  explicit SeriesCatalog(size_t arena_block_bytes = kDefaultArenaBlockBytes);

  SeriesCatalog(const SeriesCatalog&) = delete;
  SeriesCatalog& operator=(const SeriesCatalog&) = delete;

  /// Returns the id for `name`, assigning the next dense id on first
  /// sight. Aborts on an invalid name (callers on untrusted input —
  /// the wire decoder — validate first and treat invalid names as
  /// malformed input instead of calling this).
  SeriesId Intern(std::string_view name);

  /// The interned name for `id`. The returned view points into the
  /// arena and stays valid for the catalog's lifetime. Aborts if `id`
  /// was never assigned.
  std::string_view NameOf(SeriesId id) const;

  /// The id for `name` if it has been interned.
  std::optional<SeriesId> FindId(std::string_view name) const;

  /// Distinct names interned so far. Ids are dense: every id in
  /// [0, size()) is assigned.
  size_t size() const;

  /// Arena blocks allocated so far (growth observability: tests pin
  /// that interning N short names costs at most a handful of blocks,
  /// and that re-interning existing names costs none).
  size_t arena_blocks() const;

  /// Name bytes stored in the arena.
  size_t arena_bytes() const;

 private:
  /// Copies `name` into the arena; the result is stable storage.
  std::string_view ArenaStore(std::string_view name);

  const size_t arena_block_bytes_;

  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t block_used_ = 0;   // bytes used in blocks_.back()
  size_t arena_bytes_ = 0;  // total name bytes stored
  /// Keys point into the arena, so lookups on a string_view probe need
  /// no copy and no allocation.
  std::unordered_map<std::string_view, SeriesId> index_;
  /// id -> arena-backed name, indexed by the dense id.
  std::vector<std::string_view> names_;
};

/// How a SeriesSelector pattern is interpreted.
enum class SelectorKind {
  /// Matches every name (the fleet-wide selector).
  kAll,
  /// Shell-style glob: `*` matches any run of bytes (including none),
  /// `?` matches exactly one byte, every other byte matches itself.
  /// A pattern with no metacharacters is an exact-name match.
  kGlob,
  /// ECMAScript regular expression, anchored (the whole name must
  /// match, like std::regex_match / Akumuli's series-index
  /// regex_match).
  kRegex,
};

/// A compiled name predicate over the catalog (Akumuli's series-index
/// regex matching is the model). Compile once, then Matches() is
/// allocation-free for glob/all and allocation-stable for regex, so a
/// selector can sit on a dashboard's per-frame query path. Selectors
/// are immutable after construction and safe to share across threads.
class SeriesSelector {
 public:
  /// Matches every series.
  static SeriesSelector All();

  /// Compiles a glob pattern (never fails: any byte sequence is a
  /// valid glob; bytes outside the series-name charset simply never
  /// match an interned name).
  static SeriesSelector Glob(std::string_view pattern);

  /// Compiles an anchored ECMAScript regex; fails with
  /// InvalidArgument on a malformed pattern. Caveat: std::regex has
  /// no step bound, so a well-formed but pathological pattern (e.g.
  /// "(a|aa)*x") can backtrack exponentially against a long name —
  /// regex selectors are for operator-authored patterns; never
  /// compile untrusted input, and prefer globs on hot query paths.
  static Result<SeriesSelector> Regex(std::string_view pattern);

  /// Whether `name` matches. Safe from any thread.
  bool Matches(std::string_view name) const;

  /// Appends the ids of every interned name that matches, in dense id
  /// (first-seen) order, to *out (cleared first). Ids interned by
  /// another thread after the embedded size() read may be missed —
  /// the same point-in-time guarantee every catalog read has.
  void SelectInto(const SeriesCatalog& catalog,
                  std::vector<SeriesId>* out) const;

  /// Convenience wrapper over SelectInto.
  std::vector<SeriesId> Select(const SeriesCatalog& catalog) const;

  SelectorKind kind() const { return kind_; }
  const std::string& pattern() const { return pattern_; }

 private:
  SeriesSelector(SelectorKind kind, std::string pattern)
      : kind_(kind), pattern_(std::move(pattern)) {}

  SelectorKind kind_;
  std::string pattern_;
  /// Compiled form when kind_ == kRegex.
  std::regex regex_;
};

/// The glob primitive behind SelectorKind::kGlob (exposed so property
/// tests can pin the compiled selector against a naive reference).
/// Iterative with single-star backtracking: O(name * pattern) worst
/// case, zero allocation.
bool GlobMatch(std::string_view pattern, std::string_view name);

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_CATALOG_H_
