// SeriesCatalog: the fleet's name table. Operators watch *named*
// metrics ("server load over time", paper §1–2) — "host-07/cpu", not
// an integer a caller minted by hand. The catalog interns each name
// once into an arena-backed string pool (Akumuli stringpool-style:
// names are appended to fixed-size blocks and never move, so a
// returned string_view is stable for the catalog's lifetime) and hands
// back a dense internal SeriesId. Ids stay uint32_t inside the engine
// (hash sharding, registry keys, binary wire frames) but are an
// implementation detail of the catalog — public APIs speak names.
//
// Thread model: many threads intern and resolve concurrently (the
// engine's producer interns wire names while dashboard readers resolve
// ids back to names through FleetView). Reads take a shared lock;
// only a first-sight intern takes the exclusive lock, so the
// steady-state path — every name already interned — is shared-lock
// lookups with zero allocation.

#ifndef ASAP_STREAM_CATALOG_H_
#define ASAP_STREAM_CATALOG_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stream/record.h"

namespace asap {
namespace stream {

/// Longest series name the catalog (and the wire protocol) accepts.
constexpr size_t kMaxSeriesNameBytes = 256;

/// A valid series name is 1..kMaxSeriesNameBytes bytes of printable
/// ASCII excluding space ([0x21, 0x7E]). The charset makes names safe
/// as single tokens on the text wire protocol, in logs, and on
/// dashboards; it also guarantees a name can never begin with a
/// binary frame magic byte.
bool IsValidSeriesName(std::string_view name);

/// Name -> id interning table over an arena string pool.
class SeriesCatalog {
 public:
  /// Bytes per arena block. One block holds dozens-to-hundreds of
  /// names, so the intern path allocates at most once per that many
  /// first-sight names (and never for names already interned).
  static constexpr size_t kDefaultArenaBlockBytes = 16 * 1024;

  explicit SeriesCatalog(size_t arena_block_bytes = kDefaultArenaBlockBytes);

  SeriesCatalog(const SeriesCatalog&) = delete;
  SeriesCatalog& operator=(const SeriesCatalog&) = delete;

  /// Returns the id for `name`, assigning the next dense id on first
  /// sight. Aborts on an invalid name (callers on untrusted input —
  /// the wire decoder — validate first and treat invalid names as
  /// malformed input instead of calling this).
  SeriesId Intern(std::string_view name);

  /// The interned name for `id`. The returned view points into the
  /// arena and stays valid for the catalog's lifetime. Aborts if `id`
  /// was never assigned.
  std::string_view NameOf(SeriesId id) const;

  /// The id for `name` if it has been interned.
  std::optional<SeriesId> FindId(std::string_view name) const;

  /// Distinct names interned so far. Ids are dense: every id in
  /// [0, size()) is assigned.
  size_t size() const;

  /// Arena blocks allocated so far (growth observability: tests pin
  /// that interning N short names costs at most a handful of blocks,
  /// and that re-interning existing names costs none).
  size_t arena_blocks() const;

  /// Name bytes stored in the arena.
  size_t arena_bytes() const;

 private:
  /// Copies `name` into the arena; the result is stable storage.
  std::string_view ArenaStore(std::string_view name);

  const size_t arena_block_bytes_;

  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t block_used_ = 0;   // bytes used in blocks_.back()
  size_t arena_bytes_ = 0;  // total name bytes stored
  /// Keys point into the arena, so lookups on a string_view probe need
  /// no copy and no allocation.
  std::unordered_map<std::string_view, SeriesId> index_;
  /// id -> arena-backed name, indexed by the dense id.
  std::vector<std::string_view> names_;
};

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_CATALOG_H_
