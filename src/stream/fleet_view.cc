#include "stream/fleet_view.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/macros.h"
#include "common/task_pool.h"
#include "core/kernels.h"
#include "core/metrics.h"
#include "storage/store.h"

namespace asap {
namespace stream {

namespace {

// IEEE-754 total order on doubles (negative NaN < -inf < ... < +inf <
// positive NaN): the deterministic tie-breaker for columns containing
// NaN, where operator< is not a strict weak ordering.
uint64_t TotalOrderKey(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return (bits & (1ull << 63)) ? ~bits : (bits | (1ull << 63));
}

bool TotalOrderLess(double a, double b) {
  return TotalOrderKey(a) < TotalOrderKey(b);
}

// The band percentile ranks over a column of n values: the lo/hi
// order statistics of p50, p90, p99 under the inclusive linear
// interpolation definition (fractional rank = p/100 * (n-1), result
// always within [min, max] so bands bracket their members).
struct BandRanks {
  double r50, r90, r99;   // fractional ranks
  size_t idx[6];          // lo/hi statistic indices, ascending
};

BandRanks RanksFor(size_t n) {
  BandRanks r;
  const double m = static_cast<double>(n - 1);
  r.r50 = (50.0 / 100.0) * m;
  r.r90 = (90.0 / 100.0) * m;
  r.r99 = (99.0 / 100.0) * m;
  const size_t l50 = static_cast<size_t>(r.r50);
  const size_t l90 = static_cast<size_t>(r.r90);
  const size_t l99 = static_cast<size_t>(r.r99);
  r.idx[0] = l50;
  r.idx[1] = std::min(l50 + 1, n - 1);
  r.idx[2] = l90;
  r.idx[3] = std::min(l90 + 1, n - 1);
  r.idx[4] = l99;
  r.idx[5] = std::min(l99 + 1, n - 1);
  return r;
}

// Exact p50/p90/p99 of col[0..n) without sorting the whole column:
// one min/max pass, one linear 256-bucket histogram pass (values
// scaled into the [min, max] range), then only the buckets containing
// the six needed order statistics are collected and sorted. Selecting
// the k-th smallest element this way returns exactly the value
// std::sort + indexing would, so the result matches a sort-based
// rollup bitwise while doing a fraction of its work.
// Columns containing NaN fall back to a full sort under IEEE total
// order (deterministic where operator< is not).
//
// `col` is scratch (the gathered column), `bidx`/`pool` are reusable
// per-thread scratch buffers.
void SelectColumnPercentiles(const double* col, size_t n,
                             const kern::KernelTable& kt,
                             unsigned char* bidx, std::vector<double>* pool,
                             double* out50, double* out90, double* out99) {
  ASAP_DCHECK(n >= 1);
  if (n == 1) {
    *out50 = *out90 = *out99 = col[0];
    return;
  }
  const BandRanks ranks = RanksFor(n);
  double vals[6];
  const kern::ColumnMinMax mm = kt.column_minmax(col, n);
  if (mm.has_nan) {
    pool->assign(col, col + n);
    std::sort(pool->begin(), pool->end(), TotalOrderLess);
    for (int k = 0; k < 6; ++k) {
      vals[k] = (*pool)[ranks.idx[k]];
    }
  } else if (!(mm.max_v > mm.min_v)) {
    // Constant column (every order statistic is the one value).
    for (int k = 0; k < 6; ++k) {
      vals[k] = mm.min_v;
    }
  } else {
    unsigned int hist[256] = {0};
    const double scale = 255.0 / (mm.max_v - mm.min_v);
    kt.bucketize(col, n, mm.min_v, scale, bidx, hist);
    // The six statistic indices are not ascending in k for small n
    // (p90's hi index can exceed p99's lo index), so visit them in
    // rank order to keep the histogram walk monotone.
    int order[6] = {0, 1, 2, 3, 4, 5};
    std::sort(order, order + 6, [&ranks](int a, int b) {
      return ranks.idx[a] < ranks.idx[b];
    });
    size_t cum = 0;  // elements in buckets below b
    size_t b = 0;
    size_t loaded = static_cast<size_t>(-1);
    for (int kk = 0; kk < 6; ++kk) {
      const int k = order[kk];
      const size_t r = ranks.idx[k];
      while (cum + hist[b] <= r) {
        cum += hist[b];
        ++b;
      }
      if (b != loaded) {
        pool->clear();
        for (size_t i = 0; i < n; ++i) {
          if (bidx[i] == b) {
            pool->push_back(col[i]);
          }
        }
        std::sort(pool->begin(), pool->end());
        loaded = b;
      }
      vals[k] = (*pool)[r - cum];
    }
  }
  const double f50 = ranks.r50 - static_cast<double>(ranks.idx[0]);
  const double f90 = ranks.r90 - static_cast<double>(ranks.idx[2]);
  const double f99 = ranks.r99 - static_cast<double>(ranks.idx[4]);
  *out50 = vals[0] + f50 * (vals[1] - vals[0]);
  *out90 = vals[2] + f90 * (vals[3] - vals[2]);
  *out99 = vals[4] + f99 * (vals[5] - vals[4]);
}

}  // namespace

namespace {
constexpr const char* kQueryKindNames[] = {
    "sample",    "sample_glob", "topk_roughness", "aggregate",
    "bands",     "anomalies",   "diff_history",   "topk_change",
    "history_deep",
};
}  // namespace

FleetView::FleetView(const ShardedEngine* engine) : engine_(engine) {
  ASAP_CHECK(engine_ != nullptr);
  for (size_t i = 0; i < kQueryKindCount; ++i) {
    query_nanos_[i] = engine_->metrics()->GetHistogram(
        {"asap_query_seconds",
         "FleetView query latency by rollup kind",
         {{"kind", kQueryKindNames[i]}},
         1e-9});
  }
}

FleetView::FleetView(const ShardedEngine* engine, const ExecPolicy& policy)
    : FleetView(engine) {
  policy_ = policy;
}

std::shared_ptr<const StreamingAsap::Frame> FleetView::Frame(
    std::string_view name) const {
  return engine_->Snapshot(name);
}

std::vector<std::shared_ptr<const StreamingAsap::Frame>> FleetView::History(
    std::string_view name) const {
  const std::optional<SeriesId> id = catalog()->FindId(name);
  if (!id.has_value()) {
    return {};
  }
  return engine_->FrameHistoryById(*id);
}

std::vector<std::shared_ptr<const StreamingAsap::Frame>> FleetView::History(
    std::string_view name, size_t max_frames) const {
  if (max_frames == 0) {
    return {};
  }
  std::vector<std::shared_ptr<const StreamingAsap::Frame>> ring =
      History(name);
  if (ring.size() >= max_frames) {
    ring.erase(ring.begin(),
               ring.end() - static_cast<ptrdiff_t>(max_frames));
    return ring;
  }
  std::vector<std::shared_ptr<const StreamingAsap::Frame>> deep =
      DeepHistory(name, max_frames);
  // The live ring can only be deeper than the reconstruction when
  // recent panes have not reached the store yet (sync lag); serve
  // whichever view reaches further back.
  return deep.size() > ring.size() ? deep : ring;
}

std::vector<std::shared_ptr<const StreamingAsap::Frame>>
FleetView::DeepHistory(std::string_view name, size_t max_frames) const {
  storage::DurableStore* store = engine_->storage();
  if (store == nullptr || max_frames == 0) {
    return {};
  }
  telemetry::ScopedTimer timer(query_nanos_[kQHistoryDeep].get());
  const Result<uint32_t> sid = store->FindSeries(name);
  if (!sid.ok()) {
    return {};
  }
  const uint64_t total = store->PaneCount(sid.ValueOrDie());
  if (total == 0) {
    return {};
  }

  StreamingOptions opts = engine_->series_options();
  opts.snapshot_ring_frames = max_frames;
  Result<StreamingAsap> op = StreamingAsap::Create(opts);
  if (!op.ok()) {
    return {};
  }
  const size_t pane = std::max<size_t>(op->pane_size(), 1);
  const size_t interval_points = op->refresh_interval_points();

  // Skip the durable prefix no requested frame can see: with the
  // refresh interval at I panes, boundaries sit at pane counts
  // c0 + k*I (c0 = max(4, I) — the 4-pane floor delays early ones),
  // and the oldest wanted boundary only renders the visible window's
  // worth of panes before it. Skipping a multiple of I panes keeps
  // the replayed boundary phase identical to a from-zero replay.
  uint64_t skip = 0;
  if (interval_points % pane == 0) {
    const uint64_t ipanes = std::max<uint64_t>(interval_points / pane, 1);
    const uint64_t c0 = std::max<uint64_t>(4, ipanes);
    if (total < c0) {
      return {};  // no refresh boundary fits the stored history
    }
    const uint64_t last = c0 + ((total - c0) / ipanes) * ipanes;
    const uint64_t span = (max_frames - 1) * ipanes;
    const uint64_t oldest = last > c0 + span ? last - span : c0;
    const uint64_t window_panes = std::max<uint64_t>(
        opts.visible_points / pane, 4);
    const uint64_t keep_from =
        std::min(oldest > window_panes ? oldest - window_panes : 0,
                 oldest - c0);
    skip = (keep_from / ipanes) * ipanes;
  }

  std::vector<double> means;
  if (!store->ReadPanes(sid.ValueOrDie(), skip, total - skip, &means).ok()) {
    return {};
  }
  op->RestorePanes(means.data(), means.size(), /*cadenced=*/true);
  return op->FrameHistory();
}

FleetSample FleetView::SampleSelected(const SeriesSelector* selector) const {
  FleetSample sample;
  const SeriesCatalog* catalog = this->catalog();
  const size_t n = catalog->size();
  for (SeriesId id = 0; static_cast<size_t>(id) < n; ++id) {
    const std::string_view name = catalog->NameOf(id);
    if (selector != nullptr && !selector->Matches(name)) {
      continue;
    }
    auto frame = SnapshotById(id);
    if (frame == nullptr || frame->refreshes == 0) {
      sample.skipped_unpublished += 1;
      continue;
    }
    sample.series.push_back(SampledSeries{name, id, std::move(frame)});
  }
  return sample;
}

FleetSample FleetView::Sample() const {
  telemetry::ScopedTimer timer(query_nanos_[kQSample].get());
  return SampleSelected(nullptr);
}

FleetSample FleetView::Sample(const SeriesSelector& selector) const {
  telemetry::ScopedTimer timer(query_nanos_[kQSample].get());
  return SampleSelected(&selector);
}

FleetSample FleetView::SampleGlob(std::string_view pattern) const {
  telemetry::ScopedTimer timer(query_nanos_[kQSampleGlob].get());
  std::lock_guard<std::mutex> lock(glob_cache_mu_);
  if (!glob_cache_selector_.has_value() ||
      pattern != glob_cache_pattern_) {
    glob_cache_pattern_.assign(pattern);
    glob_cache_selector_ = SeriesSelector::Glob(pattern);
    glob_cache_ids_.clear();
    glob_cache_covered_ = 0;
  }
  const SeriesCatalog* catalog = this->catalog();
  const size_t n = catalog->size();
  // The catalog interns append-only, so ids below glob_cache_covered_
  // were matched on an earlier call and their names cannot change;
  // only the newly interned tail needs glob matching.
  for (SeriesId id = static_cast<SeriesId>(glob_cache_covered_);
       static_cast<size_t>(id) < n; ++id) {
    if (glob_cache_selector_->Matches(catalog->NameOf(id))) {
      glob_cache_ids_.push_back(id);
    }
  }
  glob_cache_covered_ = n;

  FleetSample sample;
  for (const SeriesId id : glob_cache_ids_) {
    auto frame = SnapshotById(id);
    if (frame == nullptr || frame->refreshes == 0) {
      sample.skipped_unpublished += 1;
      continue;
    }
    sample.series.push_back(
        SampledSeries{catalog->NameOf(id), id, std::move(frame)});
  }
  return sample;
}

RoughnessRanking FleetView::TopKByRoughnessOf(const FleetSample& sample,
                                              size_t k) {
  return TopKByRoughnessOf(sample, k, ExecPolicy{});
}

RoughnessRanking FleetView::TopKByRoughnessOf(const FleetSample& sample,
                                              size_t k,
                                              const ExecPolicy& policy) {
  RoughnessRanking ranking;
  ranking.skipped_unpublished = sample.skipped_unpublished;
  const size_t n = sample.series.size();
  // Member roughnesses are independent; compute them into per-member
  // slots across threads, then assemble rows in sample order — the
  // ranking is identical at any parallelism.
  std::vector<double> roughness(n);
  const size_t chunks = std::min(n, kern::kMaxChunks);
  ParallelChunks(policy, chunks, [&](size_t c) {
    const size_t i0 = kern::ChunkBound(n, chunks, c);
    const size_t i1 = kern::ChunkBound(n, chunks, c + 1);
    for (size_t i = i0; i < i1; ++i) {
      roughness[i] = Roughness(sample.series[i].frame->series);
    }
  });
  ranking.ranks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const SampledSeries& member = sample.series[i];
    SeriesRank rank;
    rank.name = std::string(member.name);
    rank.roughness = roughness[i];
    rank.window = member.frame->window;
    rank.refreshes = member.frame->refreshes;
    ranking.ranks.push_back(std::move(rank));
  }
  // Descending roughness, ties by name: identical frames always
  // produce identical rankings (the wire-vs-in-process parity tests
  // lean on this determinism).
  std::sort(ranking.ranks.begin(), ranking.ranks.end(),
            [](const SeriesRank& a, const SeriesRank& b) {
              if (a.roughness != b.roughness) {
                return a.roughness > b.roughness;
              }
              return a.name < b.name;
            });
  if (ranking.ranks.size() > k) {
    ranking.ranks.resize(k);
  }
  return ranking;
}

RoughnessRanking FleetView::RankByRoughness(
    size_t k, const SeriesSelector* selector) const {
  telemetry::ScopedTimer timer(query_nanos_[kQTopKRoughness].get());
  return TopKByRoughnessOf(SampleSelected(selector), k, policy_);
}

RoughnessRanking FleetView::TopKByRoughness(size_t k) const {
  return RankByRoughness(k, nullptr);
}

RoughnessRanking FleetView::TopKByRoughness(
    size_t k, const SeriesSelector& selector) const {
  return RankByRoughness(k, &selector);
}

FleetAggregate FleetView::AggregateOf(const FleetSample& sample,
                                      AggKind kind) {
  FleetAggregate agg;
  agg.skipped_unpublished = sample.skipped_unpublished;
  for (const SampledSeries& member : sample.series) {
    if (member.frame->series.empty()) {
      continue;
    }
    const double latest = member.frame->series.back();
    if (agg.series == 0) {
      agg.value = latest;
    } else {
      switch (kind) {
        case AggKind::kSum:
        case AggKind::kMean:
          agg.value += latest;
          break;
        case AggKind::kMin:
          agg.value = std::min(agg.value, latest);
          break;
        case AggKind::kMax:
          agg.value = std::max(agg.value, latest);
          break;
      }
    }
    agg.series += 1;
  }
  if (kind == AggKind::kMean && agg.series > 0) {
    agg.value /= static_cast<double>(agg.series);
  }
  return agg;
}

FleetAggregate FleetView::AggregateSelected(
    AggKind kind, const SeriesSelector* selector) const {
  telemetry::ScopedTimer timer(query_nanos_[kQAggregate].get());
  return AggregateOf(SampleSelected(selector), kind);
}

FleetAggregate FleetView::Aggregate(AggKind kind) const {
  return AggregateSelected(kind, nullptr);
}

FleetAggregate FleetView::Aggregate(AggKind kind,
                                    const SeriesSelector& selector) const {
  return AggregateSelected(kind, &selector);
}

FleetPercentileBands FleetView::BandsOf(const FleetSample& sample) {
  return BandsOf(sample, ExecPolicy{});
}

FleetPercentileBands FleetView::BandsOf(const FleetSample& sample,
                                        const ExecPolicy& policy) {
  FleetPercentileBands bands;
  bands.skipped_unpublished = sample.skipped_unpublished;
  size_t positions = static_cast<size_t>(-1);
  for (const SampledSeries& member : sample.series) {
    positions = std::min(positions, member.frame->series.size());
  }
  if (sample.series.empty() || positions == 0) {
    bands.series = sample.series.size();
    return bands;
  }
  bands.positions = positions;
  bands.series = sample.series.size();
  bands.p50.resize(positions);
  bands.p90.resize(positions);
  bands.p99.resize(positions);

  const size_t n = sample.series.size();
  // Align every member at its newest pane: band position j is the
  // member's own position j counted within the newest `positions`
  // panes it published.
  std::vector<const double*> bases(n);
  for (size_t s = 0; s < n; ++s) {
    const std::vector<double>& series = sample.series[s].frame->series;
    bases[s] = series.data() + (series.size() - positions);
  }

  const kern::KernelTable& kt = kern::ActiveKernels(policy.simd);
  // Positions are processed in blocks of 4 so the gather is a tiled
  // 4x4 transpose (one vector load per series row covers 4 columns).
  // Blocks write disjoint output positions, so they fan out freely.
  const size_t blocks = (positions + 3) / 4;
  const size_t chunks = std::min(blocks, kern::kMaxChunks);
  ParallelChunks(policy, chunks, [&](size_t c) {
    std::vector<double> cols(4 * n);
    std::vector<unsigned char> bidx(n);
    std::vector<double> pool;
    const size_t b0 = kern::ChunkBound(blocks, chunks, c);
    const size_t b1 = kern::ChunkBound(blocks, chunks, c + 1);
    for (size_t b = b0; b < b1; ++b) {
      const size_t j0 = 4 * b;
      const size_t bw = std::min<size_t>(4, positions - j0);
      if (bw == 4) {
        kt.gather4(bases.data(), j0, n, cols.data(), cols.data() + n,
                   cols.data() + 2 * n, cols.data() + 3 * n);
      } else {
        for (size_t s = 0; s < n; ++s) {
          const double* r = bases[s] + j0;
          for (size_t q = 0; q < bw; ++q) {
            cols[q * n + s] = r[q];
          }
        }
      }
      for (size_t q = 0; q < bw; ++q) {
        const size_t j = j0 + q;
        SelectColumnPercentiles(cols.data() + q * n, n, kt, bidx.data(),
                                &pool, &bands.p50[j], &bands.p90[j],
                                &bands.p99[j]);
      }
    }
  });
  return bands;
}

FleetPercentileBands FleetView::PercentileBands() const {
  telemetry::ScopedTimer timer(query_nanos_[kQBands].get());
  return BandsOf(SampleSelected(nullptr), policy_);
}

FleetPercentileBands FleetView::PercentileBands(
    const SeriesSelector& selector) const {
  telemetry::ScopedTimer timer(query_nanos_[kQBands].get());
  return BandsOf(SampleSelected(&selector), policy_);
}

FleetAnomalyCounts FleetView::AnomalyCountsOf(const FleetSample& sample,
                                              const AlertOptions& options) {
  return AnomalyCountsOf(sample, options, ExecPolicy{});
}

FleetAnomalyCounts FleetView::AnomalyCountsOf(const FleetSample& sample,
                                              const AlertOptions& options,
                                              const ExecPolicy& policy) {
  FleetAnomalyCounts counts;
  counts.skipped_unpublished = sample.skipped_unpublished;
  const size_t n = sample.series.size();
  // Per-member detector runs are independent; SIZE_MAX marks a member
  // whose frame the detector rejected as too short.
  std::vector<size_t> alerts_per(n, 0);
  const size_t chunks = std::min(n, kern::kMaxChunks);
  ParallelChunks(policy, chunks, [&](size_t c) {
    const size_t i0 = kern::ChunkBound(n, chunks, c);
    const size_t i1 = kern::ChunkBound(n, chunks, c + 1);
    for (size_t i = i0; i < i1; ++i) {
      const Result<std::vector<Alert>> alerts =
          FindDeviations(sample.series[i].frame->series, options);
      alerts_per[i] =
          alerts.ok() ? alerts.ValueOrDie().size() : static_cast<size_t>(-1);
    }
  });
  for (size_t i = 0; i < n; ++i) {
    if (alerts_per[i] == static_cast<size_t>(-1)) {
      // The detector rejects only too-short series; a member that has
      // refreshed but not yet filled enough panes lands here.
      counts.skipped_short += 1;
      continue;
    }
    counts.series += 1;
    if (alerts_per[i] > 0) {
      counts.series_alerting += 1;
      counts.alerts += alerts_per[i];
    }
  }
  return counts;
}

FleetAnomalyCounts FleetView::AnomalyCounts(
    const AlertOptions& options) const {
  telemetry::ScopedTimer timer(query_nanos_[kQAnomalies].get());
  return AnomalyCountsOf(SampleSelected(nullptr), options, policy_);
}

FleetAnomalyCounts FleetView::AnomalyCounts(
    const SeriesSelector& selector, const AlertOptions& options) const {
  telemetry::ScopedTimer timer(query_nanos_[kQAnomalies].get());
  return AnomalyCountsOf(SampleSelected(&selector), options, policy_);
}

HistoryDiff FleetView::DiffRing(
    const std::vector<std::shared_ptr<const StreamingAsap::Frame>>& ring,
    size_t k, const ExecPolicy& policy) {
  HistoryDiff diff;
  if (ring.empty()) {
    return diff;
  }
  diff.known = true;
  diff.frames_apart = std::min(k, ring.size() - 1);
  const StreamingAsap::Frame& newer = *ring.back();
  const StreamingAsap::Frame& older =
      *ring[ring.size() - 1 - diff.frames_apart];
  diff.window_delta = static_cast<long long>(newer.window) -
                      static_cast<long long>(older.window);
  diff.refreshes_apart = newer.refreshes - older.refreshes;
  // Newest-pane alignment, same as BandsOf: position j counts within
  // the newest `len` panes of each frame.
  const size_t len = std::min(newer.series.size(), older.series.size());
  diff.delta.resize(len);
  if (len == 0) {
    diff.mean_abs_delta = 0.0;
    return diff;
  }
  const double* newer_p = newer.series.data() + (newer.series.size() - len);
  const double* older_p = older.series.data() + (older.series.size() - len);
  const kern::KernelTable& kt = kern::ActiveKernels(policy.simd);
  const size_t chunks = kern::ChunksFor(len);
  kern::AbsDeltaPartials parts[kern::kMaxChunks];
  ParallelChunks(policy, chunks, [&](size_t c) {
    const size_t b0 = kern::ChunkBound(len, chunks, c);
    const size_t b1 = kern::ChunkBound(len, chunks, c + 1);
    parts[c] = kt.abs_delta(newer_p + b0, older_p + b0, b1 - b0,
                            diff.delta.data() + b0);
  });
  double sum_abs = 0.0;
  double max_abs = 0.0;
  for (size_t c = 0; c < chunks; ++c) {
    sum_abs += parts[c].sum_abs;
    max_abs = (parts[c].max_abs > max_abs) ? parts[c].max_abs : max_abs;
  }
  diff.max_abs_delta = max_abs;
  diff.mean_abs_delta = sum_abs / static_cast<double>(len);
  return diff;
}

HistoryDiff FleetView::DiffHistory(std::string_view name, size_t k) const {
  telemetry::ScopedTimer timer(query_nanos_[kQDiffHistory].get());
  const std::optional<SeriesId> id = catalog()->FindId(name);
  if (!id.has_value()) {
    return HistoryDiff{};
  }
  std::vector<std::shared_ptr<const StreamingAsap::Frame>> ring =
      engine_->FrameHistoryById(*id);
  // A diff deeper than the ring holds reaches into the durable tier:
  // reconstruct a k+1-deep ring from stored panes and diff that.
  if (k + 1 > ring.size() && engine_->storage() != nullptr) {
    std::vector<std::shared_ptr<const StreamingAsap::Frame>> deep =
        DeepHistory(name, k + 1);
    if (deep.size() > ring.size()) {
      return DiffRing(deep, k, policy_);
    }
  }
  return DiffRing(ring, k, policy_);
}

ChangeRanking FleetView::RankByChange(size_t k, size_t frames_back,
                                      const SeriesSelector* selector) const {
  telemetry::ScopedTimer timer(query_nanos_[kQTopKChange].get());
  ChangeRanking ranking;
  const SeriesCatalog* catalog = this->catalog();
  const size_t n = catalog->size();
  // Selector matching stays sequential (cheap, preserves catalog
  // order); the per-series ring diffs fan out into per-series slots.
  std::vector<SeriesId> ids;
  ids.reserve(n);
  for (SeriesId id = 0; static_cast<size_t>(id) < n; ++id) {
    if (selector == nullptr || selector->Matches(catalog->NameOf(id))) {
      ids.push_back(id);
    }
  }
  std::vector<HistoryDiff> diffs(ids.size());
  ExecPolicy inner = policy_;
  inner.threads = 1;  // parallelism is across series here
  const size_t chunks = std::min(ids.size(), kern::kMaxChunks);
  ParallelChunks(policy_, chunks, [&](size_t c) {
    const size_t i0 = kern::ChunkBound(ids.size(), chunks, c);
    const size_t i1 = kern::ChunkBound(ids.size(), chunks, c + 1);
    for (size_t i = i0; i < i1; ++i) {
      diffs[i] = DiffRing(engine_->FrameHistoryById(ids[i]), frames_back,
                          inner);
    }
  });
  for (size_t i = 0; i < ids.size(); ++i) {
    const HistoryDiff& diff = diffs[i];
    if (!diff.known) {
      ranking.skipped_unpublished += 1;
      continue;
    }
    SeriesChange change;
    change.name = std::string(catalog->NameOf(ids[i]));
    change.mean_abs_delta = diff.mean_abs_delta;
    change.max_abs_delta = diff.max_abs_delta;
    change.frames_apart = diff.frames_apart;
    ranking.ranks.push_back(std::move(change));
  }
  std::sort(ranking.ranks.begin(), ranking.ranks.end(),
            [](const SeriesChange& a, const SeriesChange& b) {
              if (a.mean_abs_delta != b.mean_abs_delta) {
                return a.mean_abs_delta > b.mean_abs_delta;
              }
              if (a.max_abs_delta != b.max_abs_delta) {
                return a.max_abs_delta > b.max_abs_delta;
              }
              return a.name < b.name;
            });
  if (ranking.ranks.size() > k) {
    ranking.ranks.resize(k);
  }
  return ranking;
}

ChangeRanking FleetView::TopKByChange(size_t k, size_t frames_back) const {
  return RankByChange(k, frames_back, nullptr);
}

ChangeRanking FleetView::TopKByChange(size_t k, size_t frames_back,
                                      const SeriesSelector& selector) const {
  return RankByChange(k, frames_back, &selector);
}

size_t FleetView::series_count() const { return catalog()->size(); }

}  // namespace stream
}  // namespace asap
