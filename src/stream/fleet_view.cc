#include "stream/fleet_view.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "core/metrics.h"

namespace asap {
namespace stream {

namespace {

/// Linear interpolation between the closest order statistics of an
/// ascending-sorted vector (the "inclusive" definition): the result
/// always lies within [sorted.front(), sorted.back()], so bands
/// bracket their members by construction.
double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  ASAP_DCHECK(!sorted.empty());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

FleetView::FleetView(const ShardedEngine* engine) : engine_(engine) {
  ASAP_CHECK(engine_ != nullptr);
}

std::shared_ptr<const StreamingAsap::Frame> FleetView::Frame(
    std::string_view name) const {
  return engine_->Snapshot(name);
}

std::vector<std::shared_ptr<const StreamingAsap::Frame>> FleetView::History(
    std::string_view name) const {
  const std::optional<SeriesId> id = catalog()->FindId(name);
  if (!id.has_value()) {
    return {};
  }
  return engine_->FrameHistoryById(*id);
}

FleetSample FleetView::SampleSelected(const SeriesSelector* selector) const {
  FleetSample sample;
  const SeriesCatalog* catalog = this->catalog();
  const size_t n = catalog->size();
  for (SeriesId id = 0; static_cast<size_t>(id) < n; ++id) {
    const std::string_view name = catalog->NameOf(id);
    if (selector != nullptr && !selector->Matches(name)) {
      continue;
    }
    auto frame = SnapshotById(id);
    if (frame == nullptr || frame->refreshes == 0) {
      sample.skipped_unpublished += 1;
      continue;
    }
    sample.series.push_back(SampledSeries{name, id, std::move(frame)});
  }
  return sample;
}

FleetSample FleetView::Sample() const { return SampleSelected(nullptr); }

FleetSample FleetView::Sample(const SeriesSelector& selector) const {
  return SampleSelected(&selector);
}

RoughnessRanking FleetView::RankByRoughness(
    size_t k, const SeriesSelector* selector) const {
  const FleetSample sample = SampleSelected(selector);
  RoughnessRanking ranking;
  ranking.skipped_unpublished = sample.skipped_unpublished;
  ranking.ranks.reserve(sample.series.size());
  for (const SampledSeries& member : sample.series) {
    SeriesRank rank;
    rank.name = std::string(member.name);
    rank.roughness = Roughness(member.frame->series);
    rank.window = member.frame->window;
    rank.refreshes = member.frame->refreshes;
    ranking.ranks.push_back(std::move(rank));
  }
  // Descending roughness, ties by name: identical frames always
  // produce identical rankings (the wire-vs-in-process parity tests
  // lean on this determinism).
  std::sort(ranking.ranks.begin(), ranking.ranks.end(),
            [](const SeriesRank& a, const SeriesRank& b) {
              if (a.roughness != b.roughness) {
                return a.roughness > b.roughness;
              }
              return a.name < b.name;
            });
  if (ranking.ranks.size() > k) {
    ranking.ranks.resize(k);
  }
  return ranking;
}

RoughnessRanking FleetView::TopKByRoughness(size_t k) const {
  return RankByRoughness(k, nullptr);
}

RoughnessRanking FleetView::TopKByRoughness(
    size_t k, const SeriesSelector& selector) const {
  return RankByRoughness(k, &selector);
}

FleetAggregate FleetView::AggregateSelected(
    AggKind kind, const SeriesSelector* selector) const {
  const FleetSample sample = SampleSelected(selector);
  FleetAggregate agg;
  agg.skipped_unpublished = sample.skipped_unpublished;
  for (const SampledSeries& member : sample.series) {
    if (member.frame->series.empty()) {
      continue;
    }
    const double latest = member.frame->series.back();
    if (agg.series == 0) {
      agg.value = latest;
    } else {
      switch (kind) {
        case AggKind::kSum:
        case AggKind::kMean:
          agg.value += latest;
          break;
        case AggKind::kMin:
          agg.value = std::min(agg.value, latest);
          break;
        case AggKind::kMax:
          agg.value = std::max(agg.value, latest);
          break;
      }
    }
    agg.series += 1;
  }
  if (kind == AggKind::kMean && agg.series > 0) {
    agg.value /= static_cast<double>(agg.series);
  }
  return agg;
}

FleetAggregate FleetView::Aggregate(AggKind kind) const {
  return AggregateSelected(kind, nullptr);
}

FleetAggregate FleetView::Aggregate(AggKind kind,
                                    const SeriesSelector& selector) const {
  return AggregateSelected(kind, &selector);
}

FleetPercentileBands FleetView::BandsOf(const FleetSample& sample) {
  FleetPercentileBands bands;
  bands.skipped_unpublished = sample.skipped_unpublished;
  size_t positions = static_cast<size_t>(-1);
  for (const SampledSeries& member : sample.series) {
    positions = std::min(positions, member.frame->series.size());
  }
  if (sample.series.empty() || positions == 0) {
    bands.series = sample.series.size();
    return bands;
  }
  bands.positions = positions;
  bands.series = sample.series.size();
  bands.p50.resize(positions);
  bands.p90.resize(positions);
  bands.p99.resize(positions);
  std::vector<double> column(sample.series.size());
  for (size_t j = 0; j < positions; ++j) {
    for (size_t s = 0; s < sample.series.size(); ++s) {
      const std::vector<double>& series = sample.series[s].frame->series;
      // Align every member at its newest pane: band position j is the
      // member's own position j counted within the newest `positions`
      // panes it published.
      column[s] = series[series.size() - positions + j];
    }
    std::sort(column.begin(), column.end());
    bands.p50[j] = PercentileOfSorted(column, 50.0);
    bands.p90[j] = PercentileOfSorted(column, 90.0);
    bands.p99[j] = PercentileOfSorted(column, 99.0);
  }
  return bands;
}

FleetPercentileBands FleetView::PercentileBands() const {
  return BandsOf(SampleSelected(nullptr));
}

FleetPercentileBands FleetView::PercentileBands(
    const SeriesSelector& selector) const {
  return BandsOf(SampleSelected(&selector));
}

FleetAnomalyCounts FleetView::AnomalyCountsOf(const FleetSample& sample,
                                              const AlertOptions& options) {
  FleetAnomalyCounts counts;
  counts.skipped_unpublished = sample.skipped_unpublished;
  for (const SampledSeries& member : sample.series) {
    const Result<std::vector<Alert>> alerts =
        FindDeviations(member.frame->series, options);
    if (!alerts.ok()) {
      // The detector rejects only too-short series; a member that has
      // refreshed but not yet filled enough panes lands here.
      counts.skipped_short += 1;
      continue;
    }
    counts.series += 1;
    if (!alerts.ValueOrDie().empty()) {
      counts.series_alerting += 1;
      counts.alerts += alerts.ValueOrDie().size();
    }
  }
  return counts;
}

FleetAnomalyCounts FleetView::AnomalyCounts(
    const AlertOptions& options) const {
  return AnomalyCountsOf(SampleSelected(nullptr), options);
}

FleetAnomalyCounts FleetView::AnomalyCounts(
    const SeriesSelector& selector, const AlertOptions& options) const {
  return AnomalyCountsOf(SampleSelected(&selector), options);
}

HistoryDiff FleetView::DiffRing(
    const std::vector<std::shared_ptr<const StreamingAsap::Frame>>& ring,
    size_t k) {
  HistoryDiff diff;
  if (ring.empty()) {
    return diff;
  }
  diff.known = true;
  diff.frames_apart = std::min(k, ring.size() - 1);
  const StreamingAsap::Frame& newer = *ring.back();
  const StreamingAsap::Frame& older =
      *ring[ring.size() - 1 - diff.frames_apart];
  diff.window_delta = static_cast<long long>(newer.window) -
                      static_cast<long long>(older.window);
  diff.refreshes_apart = newer.refreshes - older.refreshes;
  const size_t len = std::min(newer.series.size(), older.series.size());
  diff.delta.resize(len);
  double sum_abs = 0.0;
  for (size_t j = 0; j < len; ++j) {
    // Newest-pane alignment, same as BandsOf: position j counts within
    // the newest `len` panes of each frame.
    const double d = newer.series[newer.series.size() - len + j] -
                     older.series[older.series.size() - len + j];
    diff.delta[j] = d;
    const double a = std::fabs(d);
    sum_abs += a;
    diff.max_abs_delta = std::max(diff.max_abs_delta, a);
  }
  diff.mean_abs_delta = len > 0 ? sum_abs / static_cast<double>(len) : 0.0;
  return diff;
}

HistoryDiff FleetView::DiffHistory(std::string_view name, size_t k) const {
  const std::optional<SeriesId> id = catalog()->FindId(name);
  if (!id.has_value()) {
    return HistoryDiff{};
  }
  return DiffRing(engine_->FrameHistoryById(*id), k);
}

ChangeRanking FleetView::RankByChange(size_t k, size_t frames_back,
                                      const SeriesSelector* selector) const {
  ChangeRanking ranking;
  const SeriesCatalog* catalog = this->catalog();
  const size_t n = catalog->size();
  for (SeriesId id = 0; static_cast<size_t>(id) < n; ++id) {
    const std::string_view name = catalog->NameOf(id);
    if (selector != nullptr && !selector->Matches(name)) {
      continue;
    }
    const HistoryDiff diff =
        DiffRing(engine_->FrameHistoryById(id), frames_back);
    if (!diff.known) {
      ranking.skipped_unpublished += 1;
      continue;
    }
    SeriesChange change;
    change.name = std::string(name);
    change.mean_abs_delta = diff.mean_abs_delta;
    change.max_abs_delta = diff.max_abs_delta;
    change.frames_apart = diff.frames_apart;
    ranking.ranks.push_back(std::move(change));
  }
  std::sort(ranking.ranks.begin(), ranking.ranks.end(),
            [](const SeriesChange& a, const SeriesChange& b) {
              if (a.mean_abs_delta != b.mean_abs_delta) {
                return a.mean_abs_delta > b.mean_abs_delta;
              }
              if (a.max_abs_delta != b.max_abs_delta) {
                return a.max_abs_delta > b.max_abs_delta;
              }
              return a.name < b.name;
            });
  if (ranking.ranks.size() > k) {
    ranking.ranks.resize(k);
  }
  return ranking;
}

ChangeRanking FleetView::TopKByChange(size_t k, size_t frames_back) const {
  return RankByChange(k, frames_back, nullptr);
}

ChangeRanking FleetView::TopKByChange(size_t k, size_t frames_back,
                                      const SeriesSelector& selector) const {
  return RankByChange(k, frames_back, &selector);
}

size_t FleetView::series_count() const { return catalog()->size(); }

}  // namespace stream
}  // namespace asap
