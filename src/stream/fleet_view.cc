#include "stream/fleet_view.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "core/metrics.h"

namespace asap {
namespace stream {

FleetView::FleetView(const ShardedEngine* engine) : engine_(engine) {
  ASAP_CHECK(engine_ != nullptr);
}

std::shared_ptr<const StreamingAsap::Frame> FleetView::Frame(
    std::string_view name) const {
  return engine_->Snapshot(name);
}

std::vector<std::shared_ptr<const StreamingAsap::Frame>> FleetView::History(
    std::string_view name) const {
  const std::optional<SeriesId> id = catalog()->FindId(name);
  if (!id.has_value()) {
    return {};
  }
  return engine_->FrameHistoryById(*id);
}

std::vector<SeriesRank> FleetView::TopKByRoughness(size_t k) const {
  std::vector<SeriesRank> ranks;
  ForEachSeries([&ranks](std::string_view name,
                         const StreamingAsap::Frame& frame) {
    SeriesRank rank;
    rank.name = std::string(name);
    rank.roughness = Roughness(frame.series);
    rank.window = frame.window;
    rank.refreshes = frame.refreshes;
    ranks.push_back(std::move(rank));
  });
  // Descending roughness, ties by name: identical frames always
  // produce identical rankings (the wire-vs-in-process parity tests
  // lean on this determinism).
  std::sort(ranks.begin(), ranks.end(),
            [](const SeriesRank& a, const SeriesRank& b) {
              if (a.roughness != b.roughness) {
                return a.roughness > b.roughness;
              }
              return a.name < b.name;
            });
  if (ranks.size() > k) {
    ranks.resize(k);
  }
  return ranks;
}

FleetAggregate FleetView::Aggregate(AggKind kind) const {
  FleetAggregate agg;
  ForEachSeries([&agg, kind](std::string_view,
                             const StreamingAsap::Frame& frame) {
    if (frame.series.empty()) {
      return;
    }
    const double latest = frame.series.back();
    if (agg.series == 0) {
      agg.value = latest;
    } else {
      switch (kind) {
        case AggKind::kSum:
        case AggKind::kMean:
          agg.value += latest;
          break;
        case AggKind::kMin:
          agg.value = std::min(agg.value, latest);
          break;
        case AggKind::kMax:
          agg.value = std::max(agg.value, latest);
          break;
      }
    }
    agg.series += 1;
  });
  if (kind == AggKind::kMean && agg.series > 0) {
    agg.value /= static_cast<double>(agg.series);
  }
  return agg;
}

size_t FleetView::series_count() const { return catalog()->size(); }

}  // namespace stream
}  // namespace asap
