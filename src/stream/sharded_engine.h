// The multi-series, multi-threaded fleet engine.
//
// A fleet stream of tagged records is hash-partitioned by series id
// across T worker shards. Each shard owns a SeriesRegistry (its slice
// of the fleet's StreamingAsap operators), fed through a bounded FIFO
// batch queue by the producer (the caller's thread, which pulls the
// MultiSource). Because one series always lands on one shard and each
// shard's queue is FIFO, every series sees its points in stream order
// no matter how many shards run — fleet results are refresh-for-
// refresh identical to running each series alone (determinism parity).
//
// Topology per run:
//
//   MultiSource --pull--> producer --hash(series_id)--> queue[0] -> shard 0
//                                                       queue[1] -> shard 1
//                                                       ...         ...
//
// Bounded queues give natural backpressure: a producer outrunning the
// shards blocks instead of buffering without limit. Live dashboards
// read per-series frames through StreamingAsap's lock-free snapshots
// (ShardedEngine::Snapshot) while the run is in flight.

#ifndef ASAP_STREAM_SHARDED_ENGINE_H_
#define ASAP_STREAM_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/streaming_asap.h"
#include "stream/catalog.h"
#include "stream/engine.h"
#include "stream/record.h"
#include "stream/registry.h"
#include "stream/source.h"
#include "telemetry/metrics.h"

namespace asap {
namespace storage {
class DurableStore;
}  // namespace storage

namespace stream {

/// What the producer does when a shard queue is full.
enum class OverflowPolicy {
  /// Block until the shard drains a batch (lossless; a slow shard
  /// stalls the producer — and through it, e.g., a wire socket loop).
  kBlock,
  /// Drop the incoming batch and keep pumping (lossy; dropped record
  /// counts surface in ShardReport/FleetReport). For producers that
  /// must never stall, like a live ingestion socket.
  kDropNewest,
  /// Collapse the incoming batch into pane partials and merge it into
  /// the newest queued batch instead of dropping it: per series, each
  /// complete group of pane_size consecutive records becomes one
  /// record carrying the group mean (what the pane buffer would have
  /// averaged anyway, at coarser alignment), so the shard still sees
  /// the series' shape — ~pane_size× fewer records — and the producer
  /// never stalls. Conflated-away record counts surface in
  /// ShardReport/FleetReport. The merged batch is bounded: a consumer
  /// stalled so long that even collapsed records pile past a few
  /// nominal batches degrades to dropping the overflow (counted in
  /// `dropped`), keeping queued memory finite. Lossy in time
  /// resolution: partial-group boundaries follow batch arrival, not
  /// pane boundaries, so (like kDropNewest) determinism parity is
  /// forfeited under overflow.
  kConflate,
};

/// Fleet engine configuration.
struct ShardedEngineOptions {
  /// Worker threads; series are hash-partitioned across them.
  size_t shards = 1;

  /// Records pulled from the MultiSource per producer pump.
  size_t batch_size = 4096;

  /// In-flight batches buffered per shard before overflow_policy
  /// applies (backpressure bound).
  size_t queue_capacity = 16;

  /// Full-queue behavior. Note kDropNewest forfeits determinism
  /// parity: which records drop depends on shard timing.
  OverflowPolicy overflow_policy = OverflowPolicy::kBlock;

  /// Reordering horizon of the per-shard sequencer (stream/
  /// sequencer.h), in the same ticks as Record::ts. 0 (the default)
  /// bypasses sequencing: batches reach the operators in arrival
  /// order, bitwise the pre-sequencer path. > 0 stages each shard's
  /// records and releases them in timestamp order once they age past
  /// the horizon (records more than horizon ticks older than the
  /// newest timestamp seen are dropped as *late*, surfacing in
  /// ShardReport/FleetReport::late and asap_seq_late_total). Use with
  /// timed pane mode (StreamingOptions::pane_width_ticks > 0): a
  /// horizon of a few pane widths absorbs collector clock skew that
  /// would otherwise smear points across pane boundaries.
  int64_t sequencer_horizon_ticks = 0;

  /// Registry the engine's asap_shard_* instruments register in.
  /// Null (the default) gives the engine a private registry — exact
  /// per-instance counts, reachable via metrics(). Inject a shared one
  /// (e.g. a process registry also holding the wire server's
  /// instruments) to scrape everything from one surface — which is
  /// also what SelfScrapeSource samples. Must outlive the engine.
  telemetry::MetricsRegistry* metrics = nullptr;

  /// Durable tier hookup. When non-null, every pane a shard worker
  /// completes is appended to the store at batch granularity: one
  /// DurableStore::AppendPanes call per drained batch, covering all
  /// series the batch touched (the store's WAL group-commits them in
  /// one frame). Series register in the store by *name* on first
  /// sight, so the durable identity survives restarts even though
  /// catalog ids are assigned in arrival order. Must outlive the
  /// engine. Null (the default) keeps the engine memory-only.
  storage::DurableStore* storage = nullptr;
};

/// Per-shard slice of a fleet run.
struct ShardReport {
  size_t shard = 0;
  /// Records this shard consumed during the run.
  uint64_t points = 0;
  /// Batches dequeued during the run.
  uint64_t batches = 0;
  /// Lifetime refreshes across this shard's series (mirrors
  /// RunReport::refreshes semantics).
  uint64_t refreshes = 0;
  /// Distinct series resident in this shard's registry.
  size_t series = 0;
  /// Deepest the shard's queue got during the run — a backpressure
  /// indicator (== queue_capacity means the producer blocked or, under
  /// kDropNewest, dropped).
  size_t peak_queue_depth = 0;
  /// Records dropped at this shard's full queue (kDropNewest, or
  /// kConflate's stalled-consumer backstop; always 0 under kBlock).
  uint64_t dropped = 0;
  /// Records conflated away at this shard's full queue (kConflate
  /// only): collapsed into pane-partial means instead of reaching the
  /// operator individually.
  uint64_t conflated = 0;
  /// Records the sequencer dropped as late (timestamp more than the
  /// reordering horizon behind the newest seen; always 0 when
  /// sequencer_horizon_ticks == 0).
  uint64_t late = 0;
  /// Wall time the worker spent consuming batches (vs waiting).
  double busy_seconds = 0.0;
};

/// Per-series slice of a fleet run (lifetime counters).
struct SeriesReport {
  /// The series' catalog name (e.g. "host-07/cpu").
  std::string name;
  uint64_t points = 0;
  uint64_t refreshes = 0;
  /// Final chosen SMA window in panes.
  size_t window = 1;
  /// This series' records dropped as late by the shard sequencer.
  /// (A series whose every record was late never reaches a registry
  /// and gets no SeriesReport row; its drops still count in the shard
  /// and fleet totals.)
  uint64_t late = 0;
};

/// Aggregate result of one fleet run.
struct FleetReport {
  /// Records pulled from the source during the run (includes any that
  /// were then dropped at a full queue).
  uint64_t points = 0;
  /// Records dropped across all shards (kDropNewest or kConflate's
  /// backstop); pulled records that never reached an operator.
  uint64_t dropped = 0;
  /// Records conflated away across all shards (kConflate only).
  uint64_t conflated = 0;
  /// Records dropped as late across all shard sequencers. Every
  /// pulled record lands in exactly one bucket:
  ///   points == sum(shards[i].points) + dropped + conflated + late.
  uint64_t late = 0;
  double seconds = 0.0;
  double points_per_second = 0.0;
  /// Sum of lifetime refreshes across all series.
  uint64_t refreshes = 0;
  /// Distinct series across all shards.
  size_t series = 0;
  std::vector<ShardReport> shards;
  /// Sorted by series name.
  std::vector<SeriesReport> per_series;
};

/// The kConflate collapse, exposed for tests. Records are stably
/// grouped by series (per-series order preserved); within a series,
/// pane_width_ticks == 0 collapses every complete run of `pane_size`
/// consecutive records to one record carrying the group mean (a
/// trailing short group passes through raw), while pane_width_ticks
/// > 0 is *pane-aware*: consecutive records of one series that fall
/// in the same time bucket (floor((ts - pane_epoch) /
/// pane_width_ticks)) collapse to one record carrying the group mean
/// and the group's first timestamp — groups never straddle a pane
/// boundary, so collapse cannot smear values across panes the way
/// count-based grouping does under timestamped input. Singleton
/// groups pass through raw. Lossy in weighting either way (a
/// collapsed group re-enters the pane sum with weight 1).
RecordBatch ConflatePanePartials(RecordBatch batch, size_t pane_size,
                                 int64_t pane_epoch,
                                 int64_t pane_width_ticks);

/// Drives a MultiSource through hash-sharded per-series StreamingAsap
/// operators on T worker threads. Registries persist across runs, so
/// an engine can alternate Run calls with live Snapshot reads the way
/// a dashboard alternates ingest and render.
///
/// The engine owns the fleet's SeriesCatalog: sources and the wire
/// tier construct against `catalog()` so every series is a *name* end
/// to end; internal SeriesIds never cross the public surface. Read
/// queries (per-name frames, top-k, cross-series rollups) go through
/// FleetView (stream/fleet_view.h).
class ShardedEngine {
 public:
  /// Validates both option structs (series options must satisfy
  /// StreamingAsap::Create; shards/batch/queue must be >= 1).
  static Result<ShardedEngine> Create(
      const StreamingOptions& series_options,
      const ShardedEngineOptions& engine_options = ShardedEngineOptions{});

  ShardedEngine(ShardedEngine&&) noexcept;
  ShardedEngine& operator=(ShardedEngine&&) noexcept;
  ~ShardedEngine();

  /// Pulls `source` to exhaustion through the fleet.
  FleetReport RunToCompletion(MultiSource* source);

  /// Stops pulling after `budget_seconds` of wall time (checked
  /// between batches); queued batches still drain.
  FleetReport RunForBudget(MultiSource* source, double budget_seconds);

  size_t shards() const;

  /// The fleet's name table. Stable across engine moves (held behind a
  /// shared_ptr), so sources and wire servers constructed against it
  /// stay valid. Interning is thread-safe.
  SeriesCatalog* catalog() const { return catalog_.get(); }

  /// The registry holding this engine's asap_shard_* and asap_query_*
  /// instruments: the injected ShardedEngineOptions::metrics, or the
  /// engine-private one. Stable across engine moves.
  telemetry::MetricsRegistry* metrics() const { return metrics_; }

  /// The shard a series id maps to (stable for the engine's lifetime).
  static size_t ShardOf(SeriesId id, size_t shard_count);

  /// Lock-free-published frame of one named series, safe to call from
  /// any thread while a run is in flight; nullptr if the name is
  /// unknown or no record of the series has reached a shard yet
  /// (before the first refresh the frame is empty: refreshes == 0).
  /// The returned frame is immutable — no copy is made to serve the
  /// read.
  std::shared_ptr<const StreamingAsap::Frame> Snapshot(
      std::string_view name) const;

  /// Id-keyed snapshot — implementation detail of the query tier
  /// (FleetView iterates the catalog's dense ids); application code
  /// should use Snapshot(name) or FleetView.
  std::shared_ptr<const StreamingAsap::Frame> SnapshotById(
      SeriesId id) const;

  /// Id-keyed snapshot-ring history (StreamingAsap::FrameHistory),
  /// oldest first; same thread-safety as SnapshotById. Like it, an
  /// implementation detail of FleetView::History.
  std::vector<std::shared_ptr<const StreamingAsap::Frame>>
  FrameHistoryById(SeriesId id) const;

  /// The durable store wired in via ShardedEngineOptions::storage
  /// (nullptr when the engine is memory-only). The query tier
  /// (FleetView) reaches chunked pane history through this.
  storage::DurableStore* storage() const { return options_.storage; }

  /// The per-series operator configuration in effect (what the query
  /// tier needs to rebuild frames from durable panes).
  const StreamingOptions& series_options() const { return series_options_; }

  /// Restores one recovered series: interns `name`, creates its
  /// operator on the owning shard, and replays `n` pane means as
  /// already-complete panes (see StreamingAsap::RestorePanes; the
  /// pane sink does NOT fire — the panes are already durable). With
  /// cadenced == true the live refresh cadence is replayed so frames
  /// and the snapshot ring come out identical to an uninterrupted
  /// run. Only legal between runs.
  Status RestoreSeries(std::string_view name, const double* pane_means,
                       size_t n, bool cadenced);

  /// Read access to one shard's series table. Contract: deep reads
  /// through the registry (iteration, frame() on operators) are
  /// unsynchronized against the shard worker, so they are only legal
  /// while no run is in flight — between Run calls, or before the
  /// first. Debug builds enforce this with a run-in-flight check;
  /// while a run is live, read frames through Snapshot instead.
  const SeriesRegistry& shard_registry(size_t shard) const;

 private:
  struct Shard;

  ShardedEngine(const StreamingOptions& series_options,
                const ShardedEngineOptions& engine_options);

  FleetReport Run(MultiSource* source, double budget_seconds);

  StreamingOptions series_options_;
  ShardedEngineOptions options_;
  /// Points per pane under series_options_ (uniform across the fleet:
  /// all operators share one options struct); the conflation group
  /// width for OverflowPolicy::kConflate.
  size_t pane_size_ = 1;
  std::shared_ptr<SeriesCatalog> catalog_;
  /// Owns the private registry when options_.metrics was null.
  std::shared_ptr<telemetry::MetricsRegistry> owned_metrics_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// True while Run is pumping/joining (heap-allocated so the engine
  /// stays movable); guards the shard_registry() contract above.
  std::shared_ptr<std::atomic<bool>> run_in_flight_;
};

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_SHARDED_ENGINE_H_
