// FleetView: the fleet engine's read/query tier. Where sources and the
// wire protocol are the ingestion half of ASAP's §2 contract, FleetView
// is the dashboard half: coherent, lock-free reads over the frames the
// per-series operators publish, addressed by series *name*, plus the
// cross-series questions an operator actually asks a fleet — "which
// hosts look roughest right now?" (top-k by roughness of the smoothed
// view), "what is the fleet-wide level?" (aggregates), "what is the
// shape of the whole fleet?" (percentile bands over every pane
// position), "who is misbehaving?" (anomaly counts via the
// stream/alerts detector), and "what changed since I last looked?"
// (history diffs over the snapshot ring, and which-changed-most
// rankings). Any cross-series query can be scoped to a subset of the
// fleet with a SeriesSelector (glob/regex over interned names).
//
// Coherence model: every frame is published behind an atomically
// swapped shared_ptr (see StreamingAsap::frame_snapshot), so each
// frame a query touches is an immutable, internally consistent
// refresh result. A cross-series query samples each series' latest
// published frame once (FleetSample); series refresh independently,
// so the sample is per-series-coherent, not a fleet-wide barrier —
// the same guarantee a dashboard polling N hosts gets. The rollup
// math itself (BandsOf, AnomalyCountsOf) is a pure function of the
// sample, so recomputing over an already-taken sample is bitwise
// reproducible even while ingestion keeps running.
//
// Warming-up accounting: a series whose first frame is not yet
// published contributes to no rollup; every cross-series result
// carries a skipped_unpublished count so callers can tell a quiet
// fleet from one that is still warming up.

#ifndef ASAP_STREAM_FLEET_VIEW_H_
#define ASAP_STREAM_FLEET_VIEW_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/exec_policy.h"
#include "core/streaming_asap.h"
#include "stream/alerts.h"
#include "stream/catalog.h"
#include "stream/sharded_engine.h"
#include "telemetry/metrics.h"

namespace asap {
namespace stream {

/// Cross-series rollup kinds over each series' latest smoothed value.
enum class AggKind { kSum, kMean, kMin, kMax };

/// Result of FleetView::Aggregate.
struct FleetAggregate {
  /// Series that contributed (had at least one published refresh).
  size_t series = 0;
  /// The rollup; 0.0 when no series has refreshed yet.
  double value = 0.0;
  /// Selected series skipped because no frame of theirs is published
  /// yet (interned but still warming up).
  size_t skipped_unpublished = 0;
};

/// One row of FleetView::TopKByRoughness, roughest first.
struct SeriesRank {
  std::string name;
  /// Roughness (stddev of first differences) of the series' latest
  /// *smoothed* frame — high means the smoothed view still jitters,
  /// i.e. the series deserves an operator's attention.
  double roughness = 0.0;
  size_t window = 1;
  uint64_t refreshes = 0;
};

/// Result of FleetView::TopKByRoughness.
struct RoughnessRanking {
  /// At most k rows, descending roughness (ties broken by name).
  std::vector<SeriesRank> ranks;
  /// Selected series skipped as unpublished (see FleetAggregate).
  size_t skipped_unpublished = 0;
};

/// One series' latest published frame inside a FleetSample. The name
/// view points into the catalog arena (stable for the catalog's
/// lifetime); the frame is immutable and owned by the shared_ptr.
struct SampledSeries {
  std::string_view name;
  SeriesId id = 0;
  std::shared_ptr<const StreamingAsap::Frame> frame;
};

/// A point-in-time sample of the selected slice of the fleet: each
/// member's latest published frame, in catalog (first-seen) order.
/// Taking the sample is the only part of a cross-series query that
/// touches live state; every rollup over a sample is pure.
struct FleetSample {
  std::vector<SampledSeries> series;
  size_t skipped_unpublished = 0;
};

/// Fleet-wide percentile bands: at each pane position of the smoothed
/// view, the p50/p90/p99 of the selected series' values — the
/// "envelope" chart an operator reads to see whether the whole fleet
/// moved or just a few outliers did.
///
/// Alignment: series may publish frames of slightly different lengths
/// (the chosen SMA window trims each series' smoothed view), so bands
/// cover the newest `positions` pane positions every member covers
/// (positions == the shortest member frame). Band vectors are oldest
/// first, like Frame::series; index [positions-1] is the newest pane.
struct FleetPercentileBands {
  /// Pane positions covered (0 when no selected series has refreshed).
  size_t positions = 0;
  /// Per-position percentiles of the member values, oldest first
  /// (linear interpolation between closest order statistics, so every
  /// band value lies within the member min/max at that position).
  std::vector<double> p50;
  std::vector<double> p90;
  std::vector<double> p99;
  /// Members that contributed.
  size_t series = 0;
  size_t skipped_unpublished = 0;
};

/// Fleet-wide anomaly rollup: the stream/alerts deviation detector run
/// over each selected series' latest smoothed frame.
struct FleetAnomalyCounts {
  /// Members whose frame was scanned.
  size_t series = 0;
  /// Of those, how many currently contain at least one alert.
  size_t series_alerting = 0;
  /// Total alerts across all scanned members.
  size_t alerts = 0;
  /// Members whose smoothed frame is still too short for the detector.
  size_t skipped_short = 0;
  size_t skipped_unpublished = 0;
};

/// Pane-position-aligned delta between two entries of one series'
/// snapshot ring (StreamingOptions::snapshot_ring_frames): what an
/// incremental dashboard renderer needs — how much each rendered
/// position changed between two refreshes.
struct HistoryDiff {
  /// False iff the name is unknown or the series has no published
  /// frame yet; every other field is meaningless then.
  bool known = false;
  /// Ring entries actually spanned: the requested k clamped to the
  /// ring's depth - 1 (0 means "latest vs itself", identically zero).
  size_t frames_apart = 0;
  /// Per-position delta (newer - older) over the newest positions both
  /// frames cover, oldest first; delta.size() == the shorter frame.
  std::vector<double> delta;
  double max_abs_delta = 0.0;
  double mean_abs_delta = 0.0;
  /// Chosen-window drift between the two frames (newer - older).
  long long window_delta = 0;
  /// Refreshes between the two ring entries (== frames_apart unless
  /// the ring wrapped while this query ran).
  uint64_t refreshes_apart = 0;
};

/// One row of FleetView::TopKByChange: how much one series' rendered
/// view moved over the last `frames_apart` refreshes.
struct SeriesChange {
  std::string name;
  double mean_abs_delta = 0.0;
  double max_abs_delta = 0.0;
  /// Ring entries this series' diff actually spanned (its ring may be
  /// shallower than the requested k).
  size_t frames_apart = 0;
};

/// Result of FleetView::TopKByChange, most-changed first.
struct ChangeRanking {
  std::vector<SeriesChange> ranks;
  size_t skipped_unpublished = 0;
};

/// Read-only, name-addressed query API over a ShardedEngine's
/// published frames. Cheap to construct (borrows the engine); safe to
/// use from any thread, including while a run is in flight.
class FleetView {
 public:
  /// `engine` is borrowed and must outlive this view.
  explicit FleetView(const ShardedEngine* engine);

  /// Same, with an execution policy applied to every rollup this view
  /// runs (threads + SIMD; see common/exec_policy.h). The policy
  /// changes rollup speed only — every result is bitwise-identical to
  /// the default sequential scalar execution.
  FleetView(const ShardedEngine* engine, const ExecPolicy& policy);

  const ExecPolicy& exec_policy() const { return policy_; }
  void set_exec_policy(const ExecPolicy& policy) { policy_ = policy; }

  /// The latest published frame of one named series; nullptr if the
  /// name is unknown or no record of it has reached a shard yet.
  std::shared_ptr<const StreamingAsap::Frame> Frame(
      std::string_view name) const;

  /// The last K published frames of one named series, oldest first
  /// (K = StreamingOptions::snapshot_ring_frames); empty if the name
  /// is unknown or unrefreshed.
  std::vector<std::shared_ptr<const StreamingAsap::Frame>> History(
      std::string_view name) const;

  /// History extended past the snapshot ring: up to `max_frames`
  /// frames, oldest first. While the ring satisfies the request this
  /// is exactly History(name) (trimmed to max_frames, zero extra
  /// cost). A deeper request consults the engine's durable store
  /// (ShardedEngineOptions::storage): the series' pane history is read
  /// back from chunks + WAL tail and the refresh cadence is replayed
  /// into a scratch operator whose ring holds max_frames — so history
  /// spans as far as the store does (hours), not K refreshes. Deep
  /// frames are *recomputed* renders: deterministic functions of the
  /// durable panes, rendered at the same refresh boundaries as live
  /// ingestion, but their window-search seed lineage starts at the
  /// replay horizon, so a frame may differ from the one the live ring
  /// briefly held. Falls back to the ring when the engine has no
  /// store or the store does not know the series.
  std::vector<std::shared_ptr<const StreamingAsap::Frame>> History(
      std::string_view name, size_t max_frames) const;

  /// Calls fn(name, frame) for every series with at least one
  /// published refresh, in catalog (first-seen) order. The frame
  /// reference is valid for the duration of the call.
  template <typename Fn>
  void ForEachSeries(Fn&& fn) const {
    const SeriesCatalog* catalog = this->catalog();
    const size_t n = catalog->size();
    for (SeriesId id = 0; id < n; ++id) {
      const auto frame = SnapshotById(id);
      if (frame != nullptr && frame->refreshes > 0) {
        fn(catalog->NameOf(id), *frame);
      }
    }
  }

  /// Samples the latest published frame of every series (or of every
  /// series the selector matches), in catalog order. The sample is the
  /// raw material of every cross-series rollup below; take it once and
  /// reuse it to answer several questions about the same instant.
  FleetSample Sample() const;
  FleetSample Sample(const SeriesSelector& selector) const;

  /// Sample(SeriesSelector::Glob(pattern)), but with the compiled
  /// selector AND its matched-id set cached on this view: a dashboard
  /// re-issuing the same glob every refresh tick pays the compile and
  /// the full catalog scan once, then each call only glob-matches
  /// names interned since the last one (the catalog is append-only,
  /// so growth can only add candidates — cached matches stay valid).
  /// Switching patterns recompiles and rescans. Results are identical
  /// to the uncached overload, call for call. Thread-safe, like every
  /// other query on the view (the cache is internally locked).
  FleetSample SampleGlob(std::string_view pattern) const;

  /// The k series whose latest smoothed frames are roughest, in
  /// descending roughness (ties broken by name, so rankings are
  /// deterministic). Fewer than k rows if fewer series have refreshed.
  RoughnessRanking TopKByRoughness(size_t k) const;
  RoughnessRanking TopKByRoughness(size_t k,
                                   const SeriesSelector& selector) const;

  /// Pure ranking over an already-taken sample. A dashboard answering
  /// several questions about the same instant should take one Sample()
  /// and feed it to the *Of rollups instead of re-sampling per query
  /// (see examples/server_monitoring.cpp).
  static RoughnessRanking TopKByRoughnessOf(const FleetSample& sample,
                                            size_t k);
  static RoughnessRanking TopKByRoughnessOf(const FleetSample& sample,
                                            size_t k,
                                            const ExecPolicy& policy);

  /// Rolls each refreshed series' latest smoothed value (the "current
  /// level" of its dashboard) up across the fleet (or the selected
  /// slice of it).
  FleetAggregate Aggregate(AggKind kind) const;
  FleetAggregate Aggregate(AggKind kind,
                           const SeriesSelector& selector) const;

  /// Pure aggregate over an already-taken sample.
  static FleetAggregate AggregateOf(const FleetSample& sample, AggKind kind);

  /// Fleet-wide percentile bands over each pane position of the
  /// selected series' latest smoothed frames (see
  /// FleetPercentileBands for alignment semantics).
  FleetPercentileBands PercentileBands() const;
  FleetPercentileBands PercentileBands(const SeriesSelector& selector) const;

  /// Pure rollup over an already-taken sample: deterministic and
  /// bitwise reproducible for a given sample, even mid-run — across
  /// every ExecPolicy, not just within one.
  static FleetPercentileBands BandsOf(const FleetSample& sample);
  static FleetPercentileBands BandsOf(const FleetSample& sample,
                                      const ExecPolicy& policy);

  /// Runs the stream/alerts deviation detector over each selected
  /// series' latest smoothed frame and rolls the counts up.
  FleetAnomalyCounts AnomalyCounts(const AlertOptions& options = {}) const;
  FleetAnomalyCounts AnomalyCounts(const SeriesSelector& selector,
                                   const AlertOptions& options = {}) const;
  static FleetAnomalyCounts AnomalyCountsOf(const FleetSample& sample,
                                            const AlertOptions& options);
  static FleetAnomalyCounts AnomalyCountsOf(const FleetSample& sample,
                                            const AlertOptions& options,
                                            const ExecPolicy& policy);

  /// Pane-position-aligned delta between the series' latest published
  /// frame and the ring entry `k` refreshes back (clamped to the
  /// ring's depth; k == 0 diffs the latest frame against itself and
  /// is identically zero). When k exceeds the ring's depth and the
  /// engine has a durable store, the comparison ring is reconstructed
  /// from stored panes (see History(name, max_frames)) so diffs can
  /// reach arbitrarily far back; otherwise k clamps to the ring as
  /// before. See HistoryDiff.
  HistoryDiff DiffHistory(std::string_view name, size_t k) const;

  /// The k series whose rendered views changed most over the last
  /// `frames_back` ring entries (per series, clamped to its ring
  /// depth), in descending mean absolute delta; ties broken by max
  /// absolute delta, then name.
  ChangeRanking TopKByChange(size_t k, size_t frames_back) const;
  ChangeRanking TopKByChange(size_t k, size_t frames_back,
                             const SeriesSelector& selector) const;

  /// Names interned so far (refreshed or not).
  size_t series_count() const;

 private:
  const SeriesCatalog* catalog() const { return engine_->catalog(); }
  std::shared_ptr<const StreamingAsap::Frame> SnapshotById(
      SeriesId id) const {
    return engine_->SnapshotById(id);
  }

  /// selector == nullptr means "all series".
  FleetSample SampleSelected(const SeriesSelector* selector) const;
  RoughnessRanking RankByRoughness(size_t k,
                                   const SeriesSelector* selector) const;
  FleetAggregate AggregateSelected(AggKind kind,
                                   const SeriesSelector* selector) const;
  ChangeRanking RankByChange(size_t k, size_t frames_back,
                             const SeriesSelector* selector) const;
  /// DiffHistory body over an already-resolved ring.
  static HistoryDiff DiffRing(
      const std::vector<std::shared_ptr<const StreamingAsap::Frame>>& ring,
      size_t k, const ExecPolicy& policy);

  /// Reconstructs up to `max_frames` frames of one series from the
  /// engine's durable store by cadenced pane replay into a scratch
  /// operator (see History(name, max_frames)); empty if the engine
  /// has no store, the store does not know the name, or no refresh
  /// boundary fits the stored pane count.
  std::vector<std::shared_ptr<const StreamingAsap::Frame>> DeepHistory(
      std::string_view name, size_t max_frames) const;

  const ShardedEngine* engine_;
  ExecPolicy policy_;

  /// asap_query_seconds{kind=...} latency histograms in the engine's
  /// registry — one per rollup kind, resolved once at construction so
  /// per-query cost is a ScopedTimer. Indexed by QueryKind.
  enum QueryKind : size_t {
    kQSample = 0,
    kQSampleGlob,
    kQTopKRoughness,
    kQAggregate,
    kQBands,
    kQAnomalies,
    kQDiffHistory,
    kQTopKChange,
    kQHistoryDeep,
    kQueryKindCount,
  };
  std::shared_ptr<telemetry::LatencyHistogram>
      query_nanos_[kQueryKindCount];

  /// SampleGlob's cache: the last compiled glob, the ids it matched,
  /// and the catalog size those ids cover (ids past it have not been
  /// matched yet). Guarded by glob_cache_mu_ so the view stays usable
  /// from any thread; mutable because caching is not observable
  /// through results.
  mutable std::mutex glob_cache_mu_;
  mutable std::string glob_cache_pattern_;
  mutable std::optional<SeriesSelector> glob_cache_selector_;
  mutable std::vector<SeriesId> glob_cache_ids_;
  mutable size_t glob_cache_covered_ = 0;
};

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_FLEET_VIEW_H_
