// FleetView: the fleet engine's read/query tier. Where sources and the
// wire protocol are the ingestion half of ASAP's §2 contract, FleetView
// is the dashboard half: coherent, lock-free reads over the frames the
// per-series operators publish, addressed by series *name*, plus the
// cross-series questions an operator actually asks a fleet — "which
// hosts look roughest right now?" (top-k by roughness of the smoothed
// view) and "what is the fleet-wide level?" (aggregates over each
// series' latest smoothed value).
//
// Coherence model: every frame is published behind an atomically
// swapped shared_ptr (see StreamingAsap::frame_snapshot), so each
// frame a query touches is an immutable, internally consistent
// refresh result. A cross-series query samples each series' latest
// published frame once; series refresh independently, so the sample
// is per-series-coherent, not a fleet-wide barrier — the same
// guarantee a dashboard polling N hosts gets.

#ifndef ASAP_STREAM_FLEET_VIEW_H_
#define ASAP_STREAM_FLEET_VIEW_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/streaming_asap.h"
#include "stream/catalog.h"
#include "stream/sharded_engine.h"

namespace asap {
namespace stream {

/// Cross-series rollup kinds over each series' latest smoothed value.
enum class AggKind { kSum, kMean, kMin, kMax };

/// Result of FleetView::Aggregate.
struct FleetAggregate {
  /// Series that contributed (had at least one published refresh).
  size_t series = 0;
  /// The rollup; 0.0 when no series has refreshed yet.
  double value = 0.0;
};

/// One row of FleetView::TopKByRoughness, roughest first.
struct SeriesRank {
  std::string name;
  /// Roughness (stddev of first differences) of the series' latest
  /// *smoothed* frame — high means the smoothed view still jitters,
  /// i.e. the series deserves an operator's attention.
  double roughness = 0.0;
  size_t window = 1;
  uint64_t refreshes = 0;
};

/// Read-only, name-addressed query API over a ShardedEngine's
/// published frames. Cheap to construct (borrows the engine); safe to
/// use from any thread, including while a run is in flight.
class FleetView {
 public:
  /// `engine` is borrowed and must outlive this view.
  explicit FleetView(const ShardedEngine* engine);

  /// The latest published frame of one named series; nullptr if the
  /// name is unknown or no record of it has reached a shard yet.
  std::shared_ptr<const StreamingAsap::Frame> Frame(
      std::string_view name) const;

  /// The last K published frames of one named series, oldest first
  /// (K = StreamingOptions::snapshot_ring_frames); empty if the name
  /// is unknown or unrefreshed.
  std::vector<std::shared_ptr<const StreamingAsap::Frame>> History(
      std::string_view name) const;

  /// Calls fn(name, frame) for every series with at least one
  /// published refresh, in catalog (first-seen) order. The frame
  /// reference is valid for the duration of the call.
  template <typename Fn>
  void ForEachSeries(Fn&& fn) const {
    const SeriesCatalog* catalog = this->catalog();
    const size_t n = catalog->size();
    for (SeriesId id = 0; id < n; ++id) {
      const auto frame = SnapshotById(id);
      if (frame != nullptr && frame->refreshes > 0) {
        fn(catalog->NameOf(id), *frame);
      }
    }
  }

  /// The k series whose latest smoothed frames are roughest, in
  /// descending roughness (ties broken by name, so rankings are
  /// deterministic). Fewer than k rows if fewer series have refreshed.
  std::vector<SeriesRank> TopKByRoughness(size_t k) const;

  /// Rolls each refreshed series' latest smoothed value (the "current
  /// level" of its dashboard) up across the fleet.
  FleetAggregate Aggregate(AggKind kind) const;

  /// Names interned so far (refreshed or not).
  size_t series_count() const;

 private:
  const SeriesCatalog* catalog() const { return engine_->catalog(); }
  std::shared_ptr<const StreamingAsap::Frame> SnapshotById(
      SeriesId id) const {
    return engine_->SnapshotById(id);
  }

  const ShardedEngine* engine_;
};

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_FLEET_VIEW_H_
