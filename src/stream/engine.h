// A minimal streaming runtime in the MacroBase mold: operators consume
// batches; the engine drives a source through an operator and measures
// throughput. This is the execution harness behind the Fig. 10/11
// streaming experiments.

#ifndef ASAP_STREAM_ENGINE_H_
#define ASAP_STREAM_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/streaming_asap.h"
#include "stream/source.h"

namespace asap {
namespace stream {

/// A push-based streaming operator.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Consumes one batch of raw points.
  virtual void Consume(const std::vector<double>& batch) = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

/// Wraps StreamingAsap as an Operator.
class StreamingAsapOperator : public Operator {
 public:
  explicit StreamingAsapOperator(StreamingAsap asap)
      : asap_(std::move(asap)) {}

  void Consume(const std::vector<double>& batch) override {
    asap_.PushBatch(batch);
  }

  std::string name() const override { return "streaming-asap"; }

  const StreamingAsap& asap() const { return asap_; }
  StreamingAsap& asap() { return asap_; }

 private:
  StreamingAsap asap_;
};

/// Result of one engine run.
struct RunReport {
  uint64_t points = 0;
  double seconds = 0.0;
  double points_per_second = 0.0;
  uint64_t refreshes = 0;
};

/// Pulls `source` to exhaustion through `op` in batches of `batch_size`
/// and reports wall-clock throughput. If `op` is a
/// StreamingAsapOperator the refresh count is filled in.
RunReport RunToCompletion(Source* source, Operator* op,
                          size_t batch_size = 4096);

/// Like RunToCompletion but stops after `budget_seconds` of wall time
/// (checked between batches). Lets benches measure the throughput of
/// configurations whose full-stream runtime would be impractical
/// (e.g. the Fig. 11 unoptimized baseline).
RunReport RunForBudget(Source* source, Operator* op, double budget_seconds,
                       size_t batch_size = 4096);

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_ENGINE_H_
