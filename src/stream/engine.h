// A minimal streaming runtime in the MacroBase mold: operators consume
// batches; the engine drives a source through an operator and measures
// throughput. This is the execution harness behind the Fig. 10/11
// streaming experiments.

#ifndef ASAP_STREAM_ENGINE_H_
#define ASAP_STREAM_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/streaming_asap.h"
#include "stream/source.h"

namespace asap {
namespace stream {

/// Lifetime counters an operator exposes to engine reports.
struct OperatorStats {
  uint64_t refreshes = 0;
};

/// A push-based streaming operator.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Consumes one batch of raw points.
  virtual void Consume(const std::vector<double>& batch) = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Stats hook for engine reports — works for any operator, no
  /// downcasting. Operators with nothing to report keep the zero
  /// default.
  virtual OperatorStats stats() const { return OperatorStats{}; }
};

/// Wraps StreamingAsap as an Operator.
class StreamingAsapOperator : public Operator {
 public:
  explicit StreamingAsapOperator(StreamingAsap asap)
      : asap_(std::move(asap)) {}

  void Consume(const std::vector<double>& batch) override {
    asap_.PushBatch(batch.data(), batch.size());
  }

  std::string name() const override { return "streaming-asap"; }

  OperatorStats stats() const override {
    return OperatorStats{asap_.frame().refreshes};
  }

  const StreamingAsap& asap() const { return asap_; }
  StreamingAsap& asap() { return asap_; }

 private:
  StreamingAsap asap_;
};

/// Result of one engine run.
struct RunReport {
  uint64_t points = 0;
  double seconds = 0.0;
  double points_per_second = 0.0;
  uint64_t refreshes = 0;
};

/// Pulls `source` to exhaustion through `op` in batches of `batch_size`
/// and reports wall-clock throughput; refreshes come from the
/// operator's stats() hook. A thin wrapper over the fleet engine's
/// one-shard drive loop (see stream/sharded_engine.h).
RunReport RunToCompletion(Source* source, Operator* op,
                          size_t batch_size = 4096);

/// Like RunToCompletion but stops after `budget_seconds` of wall time
/// (checked between batches). Lets benches measure the throughput of
/// configurations whose full-stream runtime would be impractical
/// (e.g. the Fig. 11 unoptimized baseline).
RunReport RunForBudget(Source* source, Operator* op, double budget_seconds,
                       size_t batch_size = 4096);

/// The one-shard, one-series, caller-thread drive loop both wrappers
/// above delegate to: pulls `source` to exhaustion (or until
/// `budget_seconds`, if > 0) through `op` in batches of `batch_size`.
/// This is the degenerate case of the fleet engine
/// (stream/sharded_engine.h), which runs one such consume loop per
/// worker shard.
RunReport DriveShard(Source* source, Operator* op, size_t batch_size,
                     double budget_seconds);

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_ENGINE_H_
