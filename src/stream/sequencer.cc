#include "stream/sequencer.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace asap {
namespace stream {

Sequencer::Sequencer(int64_t horizon_ticks)
    : horizon_(horizon_ticks),
      watermark_(std::numeric_limits<int64_t>::min()) {
  ASAP_CHECK_GE(horizon_ticks, 0);
}

size_t Sequencer::Push(const Record* records, size_t n, RecordBatch* out) {
  ASAP_CHECK(records != nullptr || n == 0);
  if (horizon_ == 0) {
    // Sequencing disabled: arrival order IS the emit order.
    out->insert(out->end(), records, records + n);
    records_in_ += n;
    emitted_ += n;
    return n;
  }

  // Walk the batch in arrival order, advancing the watermark per
  // record: a record is late iff it is more than the horizon behind
  // the newest timestamp seen AT ITS OWN ARRIVAL (earlier records of
  // the same batch included). A record can only raise the watermark,
  // so in-order input — however large the batch or the total span —
  // is never late; only a record arriving after a sufficiently newer
  // one drops. Stage the on-time records as one sorted run (or an
  // extension of the newest run, when batches arrive already roughly
  // ordered — the common case keeps the run count at 1).
  scratch_.clear();
  for (size_t i = 0; i < n; ++i) {
    watermark_ = std::max(watermark_, records[i].ts);
    // watermark - horizon without wraparound near INT64_MIN.
    const int64_t arrival_floor =
        watermark_ < std::numeric_limits<int64_t>::min() + horizon_
            ? std::numeric_limits<int64_t>::min()
            : watermark_ - horizon_;
    if (records[i].ts < arrival_floor) {
      late_dropped_ += 1;
      late_by_series_[records[i].series_id] += 1;
      continue;
    }
    scratch_.push_back(Item{records[i], next_seq_++});
    records_in_ += 1;
  }
  const int64_t floor =
      watermark_ < std::numeric_limits<int64_t>::min() + horizon_
          ? std::numeric_limits<int64_t>::min()
          : watermark_ - horizon_;
  if (!scratch_.empty()) {
    std::sort(scratch_.begin(), scratch_.end(),
              [](const Item& a, const Item& b) {
                return a.rec.ts != b.rec.ts ? a.rec.ts < b.rec.ts
                                            : a.seq < b.seq;
              });
    Run* tail = runs_.empty() ? nullptr : &runs_.back();
    if (tail != nullptr && !tail->items.empty() &&
        tail->items.back().rec.ts <= scratch_.front().rec.ts) {
      tail->items.insert(tail->items.end(), scratch_.begin(),
                         scratch_.end());
    } else {
      Run run;
      run.items.assign(scratch_.begin(), scratch_.end());
      runs_.push_back(std::move(run));
    }
  }

  return EmitUpTo(floor, out);
}

size_t Sequencer::Flush(RecordBatch* out) {
  return EmitUpTo(std::numeric_limits<int64_t>::max(), out);
}

size_t Sequencer::EmitUpTo(int64_t floor, RecordBatch* out) {
  size_t appended = 0;
  // K-way merge by (ts, seq): linear min-scan per pop. The run count
  // stays tiny in practice (in-order traffic keeps it at 1; skewed
  // clients add one run per overlapping batch until it drains), so a
  // heap would cost more than it saves.
  for (;;) {
    Run* best = nullptr;
    for (Run& run : runs_) {
      if (run.head == run.items.size()) {
        continue;
      }
      const Item& h = run.items[run.head];
      if (h.rec.ts > floor) {
        continue;
      }
      if (best == nullptr) {
        best = &run;
        continue;
      }
      const Item& b = best->items[best->head];
      if (h.rec.ts < b.rec.ts ||
          (h.rec.ts == b.rec.ts && h.seq < b.seq)) {
        best = &run;
      }
    }
    if (best == nullptr) {
      break;
    }
    out->push_back(best->items[best->head].rec);
    best->head += 1;
    appended += 1;
  }
  emitted_ += appended;
  // Drop fully consumed runs so the scan above stays short.
  runs_.erase(std::remove_if(runs_.begin(), runs_.end(),
                             [](const Run& r) {
                               return r.head == r.items.size();
                             }),
              runs_.end());
  return appended;
}

}  // namespace stream
}  // namespace asap
