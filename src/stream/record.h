// Tagged records: the unit of multi-series ingestion. Real deployments
// of ASAP smooth hundreds of metrics per host across a fleet, not one
// series (§2: dashboards "ingest and process raw data from time series
// databases"); every point therefore carries the id of the series it
// belongs to, in the style of Akumuli's per-ParamId query pipeline.

#ifndef ASAP_STREAM_RECORD_H_
#define ASAP_STREAM_RECORD_H_

#include <cstdint>
#include <vector>

namespace asap {
namespace stream {

/// Identifies one logical time series within a fleet (e.g. one metric
/// on one host). Ids are an implementation detail of the SeriesCatalog
/// (stream/catalog.h), which assigns them densely in intern order —
/// user-facing APIs speak series *names*; nothing outside the catalog
/// should ever mint an id by hand. The width is load-bearing on the
/// wire: binary record frames encode ids as u32 (statically asserted
/// in net/protocol.h).
using SeriesId = uint32_t;

/// One tagged raw point.
///
/// `ts` is the point's timestamp in application-defined ticks (a
/// collector might use milliseconds since epoch; tests use small
/// integers). 0 is the unstamped default: sources that predate
/// timestamps leave it alone, and the engine's arrival-order mode
/// (StreamingOptions::pane_width_ticks == 0) never reads it. Wire
/// input without a timestamp (text lines with two tokens, 0xA5
/// frames) is stamped by the receiving FrameDecoder's stamp clock —
/// or 0 when none is installed.
struct Record {
  SeriesId series_id = 0;
  double value = 0.0;
  int64_t ts = 0;
};

inline bool operator==(const Record& a, const Record& b) {
  return a.series_id == b.series_id && a.value == b.value && a.ts == b.ts;
}

/// A batch of tagged points, in ingestion order. Per-series order
/// within and across batches is the series' stream order; records of
/// different series may interleave arbitrarily.
using RecordBatch = std::vector<Record>;

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_RECORD_H_
