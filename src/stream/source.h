// Stream sources: adapters that feed time series data into streaming
// operators. ASAP "can ingest and process raw data from time series
// databases as well as from visualization clients" (§2); sources are
// the ingestion half of that contract.

#ifndef ASAP_STREAM_SOURCE_H_
#define ASAP_STREAM_SOURCE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "ts/timeseries.h"

namespace asap {
namespace stream {

/// Pull-based source of raw points.
class Source {
 public:
  virtual ~Source() = default;

  /// Appends up to `max_points` new points to *out; returns the number
  /// appended (0 = exhausted).
  virtual size_t NextBatch(size_t max_points, std::vector<double>* out) = 0;

  /// Total points this source will ever produce (0 if unbounded).
  virtual size_t TotalPoints() const = 0;
};

/// Replays a fixed vector once.
class VectorSource : public Source {
 public:
  explicit VectorSource(std::vector<double> values);

  size_t NextBatch(size_t max_points, std::vector<double>* out) override;
  size_t TotalPoints() const override { return values_.size(); }

  void Rewind() { position_ = 0; }

 private:
  std::vector<double> values_;
  size_t position_ = 0;
};

/// Replays a vector cyclically until `total_points` have been emitted —
/// used to stretch a dataset into an arbitrarily long stream for
/// throughput runs.
class LoopingSource : public Source {
 public:
  LoopingSource(std::vector<double> values, size_t total_points);

  size_t NextBatch(size_t max_points, std::vector<double>* out) override;
  size_t TotalPoints() const override { return total_points_; }

 private:
  std::vector<double> values_;
  size_t total_points_;
  size_t emitted_ = 0;
};

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_SOURCE_H_
