// Stream sources: adapters that feed time series data into streaming
// operators. ASAP "can ingest and process raw data from time series
// databases as well as from visualization clients" (§2); sources are
// the ingestion half of that contract.

#ifndef ASAP_STREAM_SOURCE_H_
#define ASAP_STREAM_SOURCE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stream/catalog.h"
#include "stream/record.h"
#include "ts/timeseries.h"

namespace asap {
namespace stream {

/// Pull-based source of raw points.
class Source {
 public:
  virtual ~Source() = default;

  /// Appends up to `max_points` new points to *out; returns the number
  /// appended (0 = exhausted).
  virtual size_t NextBatch(size_t max_points, std::vector<double>* out) = 0;

  /// Total points this source will ever produce (0 if unbounded).
  virtual size_t TotalPoints() const = 0;
};

/// Replays a fixed vector once.
class VectorSource : public Source {
 public:
  explicit VectorSource(std::vector<double> values);

  size_t NextBatch(size_t max_points, std::vector<double>* out) override;
  size_t TotalPoints() const override { return values_.size(); }

  void Rewind() { position_ = 0; }

 private:
  std::vector<double> values_;
  size_t position_ = 0;
};

/// Replays a vector cyclically until `total_points` have been emitted
/// (0 = endless) — used to stretch a dataset into an arbitrarily long
/// stream for throughput runs.
class LoopingSource : public Source {
 public:
  LoopingSource(std::vector<double> values, size_t total_points);

  size_t NextBatch(size_t max_points, std::vector<double>* out) override;
  size_t TotalPoints() const override { return total_points_; }

 private:
  std::vector<double> values_;
  size_t total_points_;
  size_t emitted_ = 0;
};

/// Pull-based source of *tagged* records — the multi-series ingestion
/// interface consumed by the sharded fleet engine. Contract: each
/// series' records appear in that series' stream order; records of
/// different series may interleave arbitrarily.
class MultiSource {
 public:
  virtual ~MultiSource() = default;

  /// Appends up to `max_records` records to *out; returns the number
  /// appended (0 = exhausted).
  virtual size_t NextBatch(size_t max_records, RecordBatch* out) = 0;

  /// Total records this source will ever produce; 0 means unbounded
  /// or unknown (a member Source reporting 0 cannot be distinguished
  /// from one that happens to produce zero points).
  virtual size_t TotalPoints() const = 0;
};

/// Tags every point of a single-series Source with one named series —
/// lifts the existing sources (and anything built on them) into the
/// fleet world. The name is interned through `catalog` (normally the
/// engine's, via ShardedEngine::catalog()) at construction.
class TaggedSource : public MultiSource {
 public:
  TaggedSource(SeriesCatalog* catalog, std::string_view name,
               std::unique_ptr<Source> inner);

  size_t NextBatch(size_t max_records, RecordBatch* out) override;
  size_t TotalPoints() const override { return inner_->TotalPoints(); }

 private:
  SeriesId series_id_;
  std::unique_ptr<Source> inner_;
  std::vector<double> scratch_;
};

/// Round-robin interleaver over many (SeriesId, Source) pairs — models
/// a scrape cycle that visits every host once per interval. Each
/// NextBatch deals the budget across the series that are still live;
/// exhausted series drop out of the rotation. Per-series point order
/// is preserved, so fleet runs are refresh-for-refresh deterministic.
class InterleavingMultiSource : public MultiSource {
 public:
  /// Series names added below are interned through `catalog`
  /// (normally the engine's, via ShardedEngine::catalog()).
  explicit InterleavingMultiSource(SeriesCatalog* catalog);

  /// Registers a named series. Names must be unique across Add calls.
  void Add(std::string_view name, std::unique_ptr<Source> source);

  /// Convenience: registers a series replayed once from a vector
  /// (e.g. a dataset loader's values).
  void AddVector(std::string_view name, std::vector<double> values);

  /// Convenience: registers a series looped out to `total_points`
  /// (throughput runs over stretched datasets).
  void AddLooping(std::string_view name, std::vector<double> values,
                  size_t total_points);

  size_t NextBatch(size_t max_records, RecordBatch* out) override;
  size_t TotalPoints() const override;

  size_t series_count() const { return entries_.size(); }

  /// Stamps every emitted record with a synthetic uniform-rate
  /// timestamp: series point j carries ts = epoch + j * tick (a
  /// per-series sample clock — what a scrape loop at a fixed interval
  /// would produce). Call before the first NextBatch; tick must be
  /// >= 1. Default off: records carry ts = 0.
  void StampTimestamps(int64_t epoch, int64_t tick);

 private:
  struct Entry {
    SeriesId id;
    std::unique_ptr<Source> source;
    bool exhausted = false;
    int64_t emitted = 0;  // per-series sample index (timestamping)
  };

  SeriesCatalog* catalog_;
  std::vector<Entry> entries_;
  size_t cursor_ = 0;           // round-robin position
  size_t exhausted_count_ = 0;  // series that have run dry
  bool stamp_ = false;
  int64_t stamp_epoch_ = 0;
  int64_t stamp_tick_ = 1;
  std::vector<double> scratch_;
};

/// Materializes the round-robin scrape order over per-series payloads
/// into one RecordBatch — the same per-series order
/// InterleavingMultiSource emits. `names[i]` is payload i's series
/// name, interned through `catalog` in index order. Wire tests,
/// benches, and demos replay this batch over a socket to compare
/// against in-process ingestion.
RecordBatch InterleaveToRecords(
    SeriesCatalog* catalog, const std::vector<std::string>& names,
    const std::vector<std::vector<double>>& series);

/// InterleaveToRecords with uniform-rate timestamps: series i's point
/// j carries ts = epoch + j * tick (tick >= 1), the same per-series
/// sample clock InterleavingMultiSource::StampTimestamps stamps — so
/// a wire replay of this batch compares bitwise against an in-process
/// run over the stamped source.
RecordBatch InterleaveToRecordsTimed(
    SeriesCatalog* catalog, const std::vector<std::string>& names,
    const std::vector<std::vector<double>>& series, int64_t epoch,
    int64_t tick);

}  // namespace stream
}  // namespace asap

#endif  // ASAP_STREAM_SOURCE_H_
