#include "stream/engine.h"

#include "common/macros.h"
#include "common/stopwatch.h"

namespace asap {
namespace stream {

// Both single-series entry points are thin wrappers over the one-shard
// drive loop.

RunReport RunToCompletion(Source* source, Operator* op, size_t batch_size) {
  return DriveShard(source, op, batch_size, /*budget_seconds=*/0.0);
}

RunReport RunForBudget(Source* source, Operator* op, double budget_seconds,
                       size_t batch_size) {
  ASAP_CHECK_GT(budget_seconds, 0.0);
  return DriveShard(source, op, batch_size, budget_seconds);
}

RunReport DriveShard(Source* source, Operator* op, size_t batch_size,
                     double budget_seconds) {
  ASAP_CHECK(source != nullptr);
  ASAP_CHECK(op != nullptr);
  ASAP_CHECK_GE(batch_size, 1u);

  RunReport report;
  Stopwatch watch;
  std::vector<double> batch;
  batch.reserve(batch_size);
  for (;;) {
    if (budget_seconds > 0.0 && watch.ElapsedSeconds() >= budget_seconds) {
      break;
    }
    batch.clear();
    const size_t n = source->NextBatch(batch_size, &batch);
    if (n == 0) {
      break;
    }
    op->Consume(batch);
    report.points += n;
  }
  report.seconds = watch.ElapsedSeconds();
  report.points_per_second =
      report.seconds > 0.0 ? static_cast<double>(report.points) /
                                 report.seconds
                           : 0.0;
  report.refreshes = op->stats().refreshes;
  return report;
}

}  // namespace stream
}  // namespace asap
