#include "stream/sharded_engine.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "storage/store.h"
#include "stream/sequencer.h"
#include "window/panes.h"

namespace asap {
namespace stream {

RecordBatch ConflatePanePartials(RecordBatch batch, size_t pane_size,
                                 int64_t pane_epoch,
                                 int64_t pane_width_ticks) {
  const bool timed = pane_width_ticks > 0;
  if (batch.size() <= 1 || (!timed && pane_size <= 1)) {
    return batch;
  }
  // Stable group by series id. Ids are catalog-dense and shards see
  // a hashed subset, so a sort keyed on (id, original index) is
  // simplest; batches here are bounded by batch_size + one merge.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Record& a, const Record& b) {
                     return a.series_id < b.series_id;
                   });
  RecordBatch out;
  out.reserve(timed ? batch.size() / 2 + 16
                    : batch.size() / pane_size + 16);
  size_t i = 0;
  while (i < batch.size()) {
    const SeriesId id = batch[i].series_id;
    size_t j = i;
    while (j < batch.size() && batch[j].series_id == id) {
      ++j;
    }
    if (timed) {
      // Pane-aware: collapse consecutive records of one series that
      // share a time bucket. A group carries the bucket's mean and
      // its first timestamp — it re-enters the same pane its records
      // came from, never a neighbor's.
      while (i < j) {
        const int64_t pane = window::PaneIndexForTs(batch[i].ts, pane_epoch,
                                                    pane_width_ticks);
        size_t g = i + 1;
        double sum = batch[i].value;
        while (g < j && window::PaneIndexForTs(batch[g].ts, pane_epoch,
                                               pane_width_ticks) == pane) {
          sum += batch[g].value;
          ++g;
        }
        if (g - i >= 2) {
          out.push_back(
              Record{id, sum / static_cast<double>(g - i), batch[i].ts});
        } else {
          out.push_back(batch[i]);
        }
        i = g;
      }
      continue;
    }
    // Count-based (arrival mode): complete pane-sized groups collapse
    // to their mean.
    while (j - i >= pane_size) {
      double sum = 0.0;
      for (size_t k = i; k < i + pane_size; ++k) {
        sum += batch[k].value;
      }
      out.push_back(Record{id, sum / static_cast<double>(pane_size),
                           batch[i].ts});
      i += pane_size;
    }
    // Trailing short group: raw.
    for (; i < j; ++i) {
      out.push_back(batch[i]);
    }
  }
  return out;
}

// One worker shard: a slice of the fleet's series table plus the
// bounded batch queue that feeds it. Queue state is guarded by `mu`;
// `registry_mu` serializes the worker's batch consumption against
// concurrent Snapshot lookups (the frame read itself is lock-free —
// the map lookup is what needs the lock). Worker-side counters are
// written by the worker thread only and read after join.
struct ShardedEngine::Shard {
  /// Records the newest queued batch may hold under kConflate, in
  /// units of the engine's nominal batch size. Under sustained
  /// overflow collapse shrinks batches ~pane_size×, so this headroom
  /// is rarely reached; it exists so a fully stalled consumer bounds
  /// queued memory instead of growing the merge batch forever.
  static constexpr size_t kConflateBackstopBatches = 8;

  Shard(const StreamingOptions& series_options, size_t index,
        telemetry::MetricsRegistry* metrics, SeriesCatalog* catalog,
        storage::DurableStore* storage, int64_t sequencer_horizon)
      : registry(series_options),
        catalog(catalog),
        storage(storage),
        timed(series_options.pane_width_ticks > 0),
        pane_epoch(series_options.pane_epoch),
        pane_width(series_options.pane_width_ticks),
        seq_horizon(sequencer_horizon) {
    const std::string shard_label = std::to_string(index);
    using Labels = std::vector<std::pair<std::string, std::string>>;
    const Labels labels = {{"shard", shard_label}};
    queue_depth = metrics->GetGauge(
        {"asap_shard_queue_depth", "Batches queued for the shard worker",
         labels});
    push_nanos = metrics->GetHistogram(
        {"asap_shard_push_seconds", "Producer enqueue latency per batch",
         labels, 1e-9});
    drain_nanos = metrics->GetHistogram(
        {"asap_shard_drain_seconds", "Worker consume latency per batch",
         labels, 1e-9});
    records_total = metrics->GetCounter(
        {"asap_shard_records_total", "Records consumed by the shard worker",
         labels});
    dropped_total = metrics->GetCounter(
        {"asap_shard_dropped_total", "Records dropped at the full queue",
         labels});
    conflated_total = metrics->GetCounter(
        {"asap_shard_conflated_total",
         "Records collapsed into pane partials at the full queue", labels});
    // asap_seq_*: registered unconditionally (a scrape sees the family
    // at 0 even when sequencing is off, so dashboards and the CI greps
    // need no horizon-dependent wiring).
    seq_emitted_total = metrics->GetCounter(
        {"asap_seq_emitted_total",
         "Records the shard sequencer released in timestamp order", labels});
    seq_late_total = metrics->GetCounter(
        {"asap_seq_late_total",
         "Records dropped as late (older than watermark - horizon)", labels});
    seq_buffered = metrics->GetGauge(
        {"asap_seq_buffered",
         "Records staged in the shard sequencer's reordering window",
         labels});
  }

  SeriesRegistry registry;
  SeriesCatalog* catalog = nullptr;          // for name-keyed registration
  storage::DurableStore* storage = nullptr;  // null = memory-only

  // Timed pane mode (series options' pane grid; see StreamingOptions).
  bool timed = false;
  int64_t pane_epoch = 0;
  int64_t pane_width = 0;
  // Reordering horizon; > 0 activates the per-run sequencer below.
  int64_t seq_horizon = 0;
  /// The shard's reordering stage (stream/sequencer.h), recreated at
  /// each run start so run reports count one run. Null when
  /// seq_horizon == 0. Worker-thread only during a run; read after
  /// join.
  std::unique_ptr<Sequencer> sequencer;
  /// sequencer->late_dropped() already folded into seq_late_total.
  uint64_t late_folded = 0;

  // Durable-tier scratch, touched by the worker thread only. Each
  // drained batch accumulates completed-pane means per series run in
  // `flat_panes` (one flat buffer, no per-run allocation) and flushes
  // them in a single AppendPanes call.
  std::unordered_map<SeriesId, uint32_t> storage_sids;  // engine -> store id
  std::vector<double> run_values;    // per-run value scratch
  std::vector<int64_t> run_ts;       // per-run timestamp scratch (timed)
  std::vector<double> pane_scratch;  // sink target while one run pushes
  std::vector<double> flat_panes;
  struct PaneRunMeta {
    uint32_t sid;
    size_t offset;
    size_t count;
  };
  std::vector<PaneRunMeta> run_meta;
  bool storage_ok = true;  // latches false on the first append error

  static void PaneSinkThunk(void* ctx, double mean) {
    static_cast<std::vector<double>*>(ctx)->push_back(mean);
  }

  // asap_shard_* instruments (labelled shard="i") in the engine's
  // registry. Writes are batch-granular: one gauge store + histogram
  // record per Enqueue/Dequeue, never per record.
  std::shared_ptr<telemetry::Gauge> queue_depth;
  std::shared_ptr<telemetry::LatencyHistogram> push_nanos;
  std::shared_ptr<telemetry::LatencyHistogram> drain_nanos;
  std::shared_ptr<telemetry::Counter> records_total;
  std::shared_ptr<telemetry::Counter> dropped_total;
  std::shared_ptr<telemetry::Counter> conflated_total;
  std::shared_ptr<telemetry::Counter> seq_emitted_total;
  std::shared_ptr<telemetry::Counter> seq_late_total;
  std::shared_ptr<telemetry::Gauge> seq_buffered;
  mutable std::mutex registry_mu;

  std::mutex mu;
  std::condition_variable not_empty;
  std::condition_variable not_full;
  std::deque<RecordBatch> queue;
  bool closed = false;
  size_t peak_queue_depth = 0;  // producer-side, under mu
  uint64_t dropped = 0;         // producer-side, under mu
  uint64_t conflated = 0;       // producer-side, under mu

  // Worker-side per-run counters.
  uint64_t points = 0;
  uint64_t batches = 0;
  double busy_seconds = 0.0;

  /// Hands a batch to the worker. Under kBlock, waits for queue room
  /// (lossless backpressure); under kDropNewest, a full queue discards
  /// the batch and counts its records instead of stalling the
  /// producer; under kConflate, a full queue collapses the batch into
  /// per-series pane partials (mean of each pane_size-sized group)
  /// merged into the newest queued batch — the shard still sees every
  /// series' shape, at ~pane_size× reduced time resolution. The merged
  /// batch is itself bounded (kConflateBackstopBatches nominal batches
  /// of records): a consumer stalled so long that even collapsed
  /// records pile past the bound degrades to dropping the overflow
  /// (counted), keeping queued memory finite. Returns the records
  /// dropped (0, batch.size(), or the collapsed overflow).
  size_t Enqueue(RecordBatch batch, size_t capacity, OverflowPolicy policy,
                 size_t pane_size, size_t nominal_batch_size) {
    telemetry::ScopedTimer push_timer(push_nanos.get());
    std::unique_lock<std::mutex> lock(mu);
    if (policy == OverflowPolicy::kDropNewest) {
      if (queue.size() >= capacity) {
        const size_t n = batch.size();
        dropped += n;
        dropped_total->Add(n);
        peak_queue_depth = std::max(peak_queue_depth, queue.size());
        return n;
      }
    } else if (policy == OverflowPolicy::kConflate) {
      if (queue.size() >= capacity) {
        const size_t before = batch.size();
        RecordBatch collapsed = ConflatePanePartials(std::move(batch),
                                                     pane_size, pane_epoch,
                                                     pane_width);
        conflated += before - collapsed.size();
        conflated_total->Add(before - collapsed.size());
        RecordBatch& back = queue.back();
        const size_t room_cap = kConflateBackstopBatches * nominal_batch_size;
        size_t keep = collapsed.size();
        if (back.size() >= room_cap) {
          keep = 0;
        } else if (back.size() + keep > room_cap) {
          keep = room_cap - back.size();
        }
        back.insert(back.end(), collapsed.begin(),
                    collapsed.begin() + static_cast<ptrdiff_t>(keep));
        const size_t overflow = collapsed.size() - keep;
        dropped += overflow;
        dropped_total->Add(overflow);
        peak_queue_depth = std::max(peak_queue_depth, queue.size());
        not_empty.notify_one();
        return overflow;
      }
    } else {
      not_full.wait(lock, [&] { return queue.size() < capacity; });
    }
    queue.push_back(std::move(batch));
    peak_queue_depth = std::max(peak_queue_depth, queue.size());
    queue_depth->Set(static_cast<double>(queue.size()));
    not_empty.notify_one();
    return 0;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
    not_empty.notify_all();
  }

  /// Returns false when the queue is closed and drained.
  bool Dequeue(RecordBatch* out) {
    std::unique_lock<std::mutex> lock(mu);
    not_empty.wait(lock, [&] { return closed || !queue.empty(); });
    if (queue.empty()) {
      return false;
    }
    *out = std::move(queue.front());
    queue.pop_front();
    queue_depth->Set(static_cast<double>(queue.size()));
    not_full.notify_one();
    return true;
  }

  /// Feeds one ordered batch into the shard's operators. Records of
  /// one series are contiguous runs within a batch only by accident;
  /// the loop groups whatever runs exist so full panes take
  /// StreamingAsap's bulk-append fast path (timed mode feeds the same
  /// runs through PushTimed with the run's timestamps). registry_mu
  /// is held only around the map lookup/insert — never across
  /// PushBatch — so a concurrent Snapshot waits for a pointer chase,
  /// not a window search. The operator pointer stays valid outside
  /// the lock: unordered_map never invalidates references on insert,
  /// and this worker is the shard's only mutator.
  void ProcessRecords(const RecordBatch& batch) {
    size_t i = 0;
    flat_panes.clear();
    run_meta.clear();
    while (i < batch.size()) {
      const SeriesId id = batch[i].series_id;
      size_t j = i + 1;
      while (j < batch.size() && batch[j].series_id == id) {
        ++j;
      }
      run_values.clear();
      run_values.reserve(j - i);
      for (size_t k = i; k < j; ++k) {
        run_values.push_back(batch[k].value);
      }
      if (timed) {
        run_ts.clear();
        run_ts.reserve(j - i);
        for (size_t k = i; k < j; ++k) {
          run_ts.push_back(batch[k].ts);
        }
      }
      StreamingAsap* op = nullptr;
      {
        std::lock_guard<std::mutex> lock(registry_mu);
        op = &registry.GetOrCreate(id);
      }
      if (storage != nullptr && storage_ok) {
        // Catch the panes this run completes: the sink fills the
        // shard scratch, flushed once per batch below. (Setting the
        // sink each run is two pointer stores — cheap, and it also
        // covers operators created by recovery's RestoreSeries.)
        pane_scratch.clear();
        op->set_pane_sink(&PaneSinkThunk, &pane_scratch);
        PushRun(op);
        op->set_pane_sink(nullptr, nullptr);
        if (!pane_scratch.empty()) {
          const uint32_t sid = StoreSidFor(id);
          if (storage_ok) {
            run_meta.push_back(
                PaneRunMeta{sid, flat_panes.size(), pane_scratch.size()});
            flat_panes.insert(flat_panes.end(), pane_scratch.begin(),
                              pane_scratch.end());
          }
        }
      } else {
        PushRun(op);
      }
      i = j;
    }
    if (!run_meta.empty() && storage_ok) {
      // One durable append per drained batch: all series' completed
      // panes ride one WAL frame (batch-granular durability).
      std::vector<storage::PaneRun> runs;
      runs.reserve(run_meta.size());
      for (const PaneRunMeta& m : run_meta) {
        storage::PaneRun run;
        run.sid = m.sid;
        run.values = flat_panes.data() + m.offset;
        run.count = static_cast<uint32_t>(m.count);
        runs.push_back(run);
      }
      if (!storage->AppendPanes(runs.data(), runs.size()).ok()) {
        // The store poisons itself on the first IO error; stop
        // paying the append cost and keep the engine serving reads.
        storage_ok = false;
      }
    }
  }

  /// One series run into its operator, in the mode the engine runs in.
  void PushRun(StreamingAsap* op) {
    if (timed) {
      op->PushTimed(run_values.data(), run_ts.data(), run_values.size());
    } else {
      op->PushBatch(run_values.data(), run_values.size());
    }
  }

  /// Consumes queued batches until the queue closes and drains. With
  /// a sequencer active, every dequeued batch is staged and only the
  /// records released in timestamp order reach the operators; the
  /// reordering tail is flushed after the queue closes (end of
  /// stream), so `points` counts exactly the records operators
  /// consumed and the run-report identity
  /// pulled == consumed + dropped + conflated + late holds.
  void WorkerLoop() {
    RecordBatch batch;
    RecordBatch ordered;
    while (Dequeue(&batch)) {
      Stopwatch busy;
      const RecordBatch* work = &batch;
      if (sequencer != nullptr) {
        ordered.clear();
        sequencer->Push(batch.data(), batch.size(), &ordered);
        FoldSequencerCounters(ordered.size());
        work = &ordered;
      }
      ProcessRecords(*work);
      points += work->size();
      batches += 1;
      records_total->Add(work->size());
      const uint64_t busy_nanos = busy.ElapsedNanos();
      drain_nanos->Record(busy_nanos);
      busy_seconds += static_cast<double>(busy_nanos) * 1e-9;
    }
    if (sequencer != nullptr) {
      Stopwatch busy;
      ordered.clear();
      sequencer->Flush(&ordered);
      FoldSequencerCounters(ordered.size());
      if (!ordered.empty()) {
        ProcessRecords(ordered);
        points += ordered.size();
        records_total->Add(ordered.size());
      }
      const uint64_t busy_nanos = busy.ElapsedNanos();
      drain_nanos->Record(busy_nanos);
      busy_seconds += static_cast<double>(busy_nanos) * 1e-9;
    }
  }

  /// Folds the sequencer's since-last-call deltas into the asap_seq_*
  /// instruments (batch-granular, like every other hot-path write).
  void FoldSequencerCounters(size_t emitted_now) {
    seq_emitted_total->Add(emitted_now);
    const uint64_t late_now = sequencer->late_dropped();
    seq_late_total->Add(late_now - late_folded);
    late_folded = late_now;
    seq_buffered->Set(static_cast<double>(sequencer->buffered()));
  }

  /// Store id for an engine series id, registering by name on first
  /// sight. Worker-thread only (the map is unsynchronized).
  uint32_t StoreSidFor(SeriesId id) {
    auto it = storage_sids.find(id);
    if (it != storage_sids.end()) {
      return it->second;
    }
    auto sid = storage->RegisterSeries(catalog->NameOf(id));
    if (!sid.ok()) {
      storage_ok = false;
      storage_sids.emplace(id, 0);
      return 0;
    }
    storage_sids.emplace(id, sid.ValueOrDie());
    return sid.ValueOrDie();
  }

  void ResetRunCounters() {
    std::lock_guard<std::mutex> lock(mu);
    ASAP_CHECK(queue.empty());
    closed = false;
    peak_queue_depth = 0;
    dropped = 0;
    conflated = 0;
    points = 0;
    batches = 0;
    busy_seconds = 0.0;
    // Fresh sequencer per run: the watermark and late counts in the
    // run report cover exactly this run (registry instruments stay
    // lifetime-cumulative, as everywhere else).
    sequencer = seq_horizon > 0 ? std::make_unique<Sequencer>(seq_horizon)
                                : nullptr;
    late_folded = 0;
  }
};

Result<ShardedEngine> ShardedEngine::Create(
    const StreamingOptions& series_options,
    const ShardedEngineOptions& engine_options) {
  if (engine_options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (engine_options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (engine_options.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (engine_options.sequencer_horizon_ticks < 0) {
    return Status::InvalidArgument("sequencer_horizon_ticks must be >= 0");
  }
  // Probe the per-series factory configuration once so invalid options
  // fail here instead of aborting inside a worker thread at first use.
  // The probe also resolves the pane size kConflate groups by.
  Result<StreamingAsap> probe = StreamingAsap::Create(series_options);
  if (!probe.ok()) {
    return probe.status();
  }
  ShardedEngine engine(series_options, engine_options);
  engine.pane_size_ = probe->pane_size();
  return engine;
}

ShardedEngine::ShardedEngine(const StreamingOptions& series_options,
                             const ShardedEngineOptions& engine_options)
    : series_options_(series_options),
      options_(engine_options),
      catalog_(std::make_shared<SeriesCatalog>()),
      run_in_flight_(std::make_shared<std::atomic<bool>>(false)) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_shared<telemetry::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        series_options_, i, metrics_, catalog_.get(), options_.storage,
        options_.sequencer_horizon_ticks));
  }
}

ShardedEngine::ShardedEngine(ShardedEngine&&) noexcept = default;
ShardedEngine& ShardedEngine::operator=(ShardedEngine&&) noexcept = default;
ShardedEngine::~ShardedEngine() = default;

size_t ShardedEngine::shards() const { return shards_.size(); }

size_t ShardedEngine::ShardOf(SeriesId id, size_t shard_count) {
  ASAP_CHECK_GE(shard_count, 1u);
  // splitmix64 finalizer: cheap, and spreads the dense sequential ids
  // fleets typically assign (host 0..N) instead of striping them.
  uint64_t h = id;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<size_t>(h % shard_count);
}

std::shared_ptr<const StreamingAsap::Frame> ShardedEngine::Snapshot(
    std::string_view name) const {
  const std::optional<SeriesId> id = catalog_->FindId(name);
  return id.has_value() ? SnapshotById(*id) : nullptr;
}

std::shared_ptr<const StreamingAsap::Frame> ShardedEngine::SnapshotById(
    SeriesId id) const {
  const Shard& shard = *shards_[ShardOf(id, shards_.size())];
  std::lock_guard<std::mutex> lock(shard.registry_mu);
  const StreamingAsap* op = shard.registry.Find(id);
  return op == nullptr ? nullptr : op->frame_snapshot();
}

std::vector<std::shared_ptr<const StreamingAsap::Frame>>
ShardedEngine::FrameHistoryById(SeriesId id) const {
  const Shard& shard = *shards_[ShardOf(id, shards_.size())];
  std::lock_guard<std::mutex> lock(shard.registry_mu);
  const StreamingAsap* op = shard.registry.Find(id);
  return op == nullptr
             ? std::vector<std::shared_ptr<const StreamingAsap::Frame>>{}
             : op->FrameHistory();
}

Status ShardedEngine::RestoreSeries(std::string_view name,
                                    const double* pane_means, size_t n,
                                    bool cadenced) {
  if (!IsValidSeriesName(name)) {
    return Status::InvalidArgument("RestoreSeries: invalid series name");
  }
  if (run_in_flight_->load(std::memory_order_acquire)) {
    return Status::Internal("RestoreSeries: run in flight");
  }
  const SeriesId id = catalog_->Intern(name);
  Shard& shard = *shards_[ShardOf(id, shards_.size())];
  StreamingAsap* op = nullptr;
  {
    std::lock_guard<std::mutex> lock(shard.registry_mu);
    op = &shard.registry.GetOrCreate(id);
  }
  if (op->points_consumed() != 0) {
    return Status::AlreadyExists("RestoreSeries: series already has points");
  }
  // No sink: these panes are already durable (restore must never echo
  // them back into the store).
  op->RestorePanes(pane_means, n, cadenced);
  return Status::OK();
}

const SeriesRegistry& ShardedEngine::shard_registry(size_t shard) const {
  ASAP_CHECK_LT(shard, shards_.size());
  // Contract (see header): deep registry reads race the shard worker,
  // so they are only legal between runs. Debug builds catch misuse.
  ASAP_DCHECK(!run_in_flight_->load(std::memory_order_acquire));
  return shards_[shard]->registry;
}

FleetReport ShardedEngine::RunToCompletion(MultiSource* source) {
  return Run(source, /*budget_seconds=*/0.0);
}

FleetReport ShardedEngine::RunForBudget(MultiSource* source,
                                        double budget_seconds) {
  ASAP_CHECK_GT(budget_seconds, 0.0);
  return Run(source, budget_seconds);
}

FleetReport ShardedEngine::Run(MultiSource* source, double budget_seconds) {
  ASAP_CHECK(source != nullptr);
  const size_t num_shards = shards_.size();
  for (auto& shard : shards_) {
    shard->ResetRunCounters();
  }
  run_in_flight_->store(true, std::memory_order_release);

  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(num_shards);
  for (auto& shard : shards_) {
    workers.emplace_back([s = shard.get()] { s->WorkerLoop(); });
  }

  // Producer: pull tagged batches, partition by shard, enqueue. An
  // enqueue donates its buffer to the queue and replaces it with a
  // fresh pre-reserved one, so the partition path never re-grows a
  // split vector mid-pump.
  FleetReport report;
  RecordBatch pull;
  pull.reserve(options_.batch_size);
  std::vector<RecordBatch> split(num_shards);
  for (RecordBatch& buffer : split) {
    buffer.reserve(options_.batch_size);
  }
  for (;;) {
    if (budget_seconds > 0.0 && watch.ElapsedSeconds() >= budget_seconds) {
      break;
    }
    pull.clear();
    const size_t n = source->NextBatch(options_.batch_size, &pull);
    if (n == 0) {
      break;
    }
    report.points += n;
    if (num_shards == 1) {
      report.dropped += shards_[0]->Enqueue(
          std::move(pull), options_.queue_capacity, options_.overflow_policy,
          pane_size_, options_.batch_size);
      pull = RecordBatch{};
      pull.reserve(options_.batch_size);
      continue;
    }
    for (const Record& r : pull) {
      split[ShardOf(r.series_id, num_shards)].push_back(r);
    }
    for (size_t i = 0; i < num_shards; ++i) {
      if (split[i].empty()) {
        continue;
      }
      report.dropped += shards_[i]->Enqueue(
          std::move(split[i]), options_.queue_capacity,
          options_.overflow_policy, pane_size_, options_.batch_size);
      split[i] = RecordBatch{};
      split[i].reserve(options_.batch_size);
    }
  }

  for (auto& shard : shards_) {
    shard->Close();
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  run_in_flight_->store(false, std::memory_order_release);
  report.seconds = watch.ElapsedSeconds();
  report.points_per_second =
      report.seconds > 0.0
          ? static_cast<double>(report.points) / report.seconds
          : 0.0;

  for (size_t i = 0; i < num_shards; ++i) {
    const Shard& shard = *shards_[i];
    ShardReport sr;
    sr.shard = i;
    sr.points = shard.points;
    sr.batches = shard.batches;
    sr.series = shard.registry.size();
    sr.peak_queue_depth = shard.peak_queue_depth;
    sr.dropped = shard.dropped;
    sr.conflated = shard.conflated;
    sr.late = shard.sequencer != nullptr ? shard.sequencer->late_dropped()
                                         : 0;
    sr.busy_seconds = shard.busy_seconds;
    shard.registry.ForEach([&sr](SeriesId, const StreamingAsap& op) {
      sr.refreshes += op.frame().refreshes;
    });
    report.refreshes += sr.refreshes;
    report.series += sr.series;
    report.conflated += sr.conflated;
    report.late += sr.late;
    report.shards.push_back(sr);

    for (SeriesId id : shard.registry.Ids()) {
      const StreamingAsap& op = *shard.registry.Find(id);
      SeriesReport series_report;
      series_report.name = std::string(catalog_->NameOf(id));
      series_report.points = op.points_consumed();
      series_report.refreshes = op.frame().refreshes;
      series_report.window = op.frame().window;
      if (shard.sequencer != nullptr) {
        const auto& late_map = shard.sequencer->late_by_series();
        const auto it = late_map.find(id);
        series_report.late = it != late_map.end() ? it->second : 0;
      }
      report.per_series.push_back(std::move(series_report));
    }
  }
  std::sort(report.per_series.begin(), report.per_series.end(),
            [](const SeriesReport& a, const SeriesReport& b) {
              return a.name < b.name;
            });
  return report;
}

}  // namespace stream
}  // namespace asap
