// Window-length search strategies (paper §4.1–4.3).
//
// All strategies solve the same optimization (§3.4): over candidate
// windows w in [1, max_window], minimize roughness(SMA(X, w)) subject
// to Kurt(SMA(X, w)) >= Kurt(X). They differ only in which candidates
// they evaluate:
//
//   * Exhaustive  — every w (the quality gold standard; O(N^2)).
//   * Grid(k)     — every k-th w.
//   * Binary      — bisection assuming monotonicity (exact for IID
//                   data per Eq. 2/4; approximate otherwise).
//   * Asap        — ACF-peak candidates with Eq. 5/6 pruning, then a
//                   binary-search sweep of the remaining range
//                   (Algorithms 1 & 2).
//
// Searches run on the (already preaggregated) series; the public API
// in core/smooth.h composes preaggregation with a strategy.

#ifndef ASAP_CORE_SEARCH_H_
#define ASAP_CORE_SEARCH_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "common/exec_policy.h"
#include "core/acf_peaks.h"
#include "core/series_context.h"

namespace asap {

/// Instrumentation shared by all strategies (reported in Table 2 and
/// the Fig. 8/9 benches).
struct SearchDiagnostics {
  /// Number of candidate windows actually smoothed and scored
  /// (each costs O(N)).
  size_t candidates_evaluated = 0;
  /// Of those, how many went through the fused zero-allocation
  /// ScoreWindow kernel (equals candidates_evaluated unless
  /// SearchOptions::use_naive_evaluator is set).
  size_t allocation_free_evals = 0;
  /// Candidates skipped by the Eq. 6 lower-bound rule.
  size_t pruned_lower_bound = 0;
  /// Candidates skipped by the Eq. 5 roughness-estimate rule.
  size_t pruned_roughness = 0;
  /// ACF peaks found (ASAP only).
  size_t acf_peaks = 0;
};

/// Outcome of a search over one series.
struct SearchResult {
  /// Chosen window (1 = leave unsmoothed).
  size_t window = 1;
  /// Roughness of SMA(X, window).
  double roughness = std::numeric_limits<double>::infinity();
  /// Kurtosis of SMA(X, window).
  double kurtosis = 0.0;
  SearchDiagnostics diag;
};

/// Search-space configuration.
struct SearchOptions {
  /// Largest window to consider; 0 = auto (N / max_window_divisor).
  size_t max_window = 0;
  /// Divisor for the automatic max window (paper's implementations use
  /// N/10, which reproduces Table 2's candidate counts).
  size_t max_window_divisor = 10;
  /// ACF peak detection threshold (ASAP only).
  double acf_threshold = 0.2;
  /// Step for grid search.
  size_t grid_step = 1;

  /// Ablation switches (bench_ablation_pruning): disable the Eq. 6
  /// lower-bound rule / the Eq. 5 roughness-estimate rule to measure
  /// each rule's contribution. Production code leaves both enabled.
  bool disable_lower_bound_pruning = false;
  bool disable_roughness_pruning = false;

  /// Score candidates with the naive EvaluateWindow (materialize +
  /// multi-pass) instead of the fused SeriesContext kernel. Testing and
  /// benchmarking only: the parity tests and bench_micro_kernels use it
  /// to compare the two evaluators through identical search logic.
  bool use_naive_evaluator = false;

  /// Intra-search execution: threads and SIMD mode for the candidate
  /// sweep (exhaustive/grid fan candidates out across threads; binary
  /// and ASAP fan out inside the scoring kernel), the fused
  /// ScoreWindow kernel, and the ACF's FFT passes. Search results are
  /// bitwise-identical under every policy (see common/exec_policy.h).
  ExecPolicy exec;

  /// Resolved maximum window for a series of length n (>= 1, <= n).
  size_t ResolveMaxWindow(size_t n) const;
};

/// Evaluation of a single candidate window.
struct CandidateScore {
  double roughness = 0.0;
  double kurtosis = 0.0;
};

/// Naive reference evaluator: materializes SMA(x, w) and runs the
/// batch metrics over it (O(N) allocations + several passes). Kept as
/// the ground truth the fused ScoreWindow kernel is tested against;
/// production searches go through SeriesContext instead.
CandidateScore EvaluateWindow(const std::vector<double>& x, size_t w);

/// Exhaustive scan of w = 1..max_window.
SearchResult ExhaustiveSearch(SeriesContext* ctx, const SearchOptions& options);
SearchResult ExhaustiveSearch(const std::vector<double>& x,
                              const SearchOptions& options);

/// Grid scan of w = 1, 1+k, 1+2k, ...
SearchResult GridSearch(SeriesContext* ctx, const SearchOptions& options);
SearchResult GridSearch(const std::vector<double>& x,
                        const SearchOptions& options);

/// Bisection on the kurtosis constraint (largest feasible window under
/// the monotonicity assumption of §4.2).
SearchResult BinarySearch(SeriesContext* ctx, const SearchOptions& options);
SearchResult BinarySearch(const std::vector<double>& x,
                          const SearchOptions& options);

/// Mutable search state threaded through ASAP's pruning rules; the
/// streaming operator re-seeds it across refreshes (§4.5).
struct AsapState {
  size_t window = 1;
  double roughness = std::numeric_limits<double>::infinity();
  double lower_bound = 1.0;  // wLB of Algorithm 1
  bool has_feasible = false;
};

/// Full ASAP search (Algorithms 1 + 2). If `seed` is non-null it is
/// used as the starting state (streaming warm start) and updated in
/// place; otherwise a fresh state is used. The context overload reuses
/// the context's cached ACF (EnsureAcf) across calls.
SearchResult AsapSearch(SeriesContext* ctx, const SearchOptions& options,
                        AsapState* seed = nullptr);
SearchResult AsapSearch(const std::vector<double>& x,
                        const SearchOptions& options,
                        AsapState* seed = nullptr);

/// ASAP search when the ACF is already available (streaming path keeps
/// it incrementally refreshed).
SearchResult AsapSearchWithAcf(SeriesContext* ctx, const AcfInfo& acf,
                               const SearchOptions& options,
                               AsapState* seed = nullptr);
SearchResult AsapSearchWithAcf(const std::vector<double>& x,
                               const AcfInfo& acf,
                               const SearchOptions& options,
                               AsapState* seed = nullptr);

}  // namespace asap

#endif  // ASAP_CORE_SEARCH_H_
