// Interactive exploration: zoom, scroll, re-render (paper §2: "When
// ASAP users change the range of time series to visualize (e.g., via
// zoom-in, zoom-out, scrolling), ASAP re-renders its output in
// accordance with the new range").
//
// The Explorer precomputes a dyadic pane pyramid (level k holds means
// of 2^k consecutive raw points) so that rendering any viewport costs
// O(resolution) slicing plus one ASAP search on ~resolution points,
// independent of the viewport's raw size — the interactive-latency
// requirement of §1. Rendering also warm-starts each level's search
// state from the previous render at that level (the streaming seeding
// idea applied to exploration).

#ifndef ASAP_CORE_EXPLORER_H_
#define ASAP_CORE_EXPLORER_H_

#include <cstddef>
#include <map>
#include <vector>

#include "common/result.h"
#include "core/search.h"
#include "ts/timeseries.h"

namespace asap {

/// Explorer configuration.
struct ExplorerOptions {
  /// Target display width in pixels.
  size_t resolution = 800;
  /// Window-search options applied at render time.
  SearchOptions search;
};

/// A rendered viewport.
struct ViewFrame {
  /// Smoothed series for the viewport.
  std::vector<double> series;
  /// Chosen SMA window, in display buckets.
  size_t window = 1;
  /// Pyramid level used (raw points per level sample = 2^level).
  size_t level = 0;
  /// Raw points represented by one rendered bucket.
  size_t points_per_bucket = 1;
  /// Viewport bounds in raw point indices.
  size_t begin = 0;
  size_t end = 0;
  /// Quality metrics of the viewport before/after smoothing.
  double roughness_before = 0.0;
  double roughness_after = 0.0;
  double kurtosis_before = 0.0;
  double kurtosis_after = 0.0;
  /// Candidates the render's search evaluated.
  size_t candidates_evaluated = 0;
};

/// Multi-resolution explorer over an immutable series.
class Explorer {
 public:
  /// Builds the pyramid; O(N) total work and memory (geometric sum).
  /// Fails for series shorter than 8 points or resolution < 16.
  static Result<Explorer> Create(TimeSeries series,
                                 const ExplorerOptions& options);

  /// Renders the viewport [begin, end) of raw points; fails on bad
  /// ranges or viewports shorter than 8 points.
  Result<ViewFrame> Render(size_t begin, size_t end);

  /// Renders the whole series.
  Result<ViewFrame> RenderAll();

  /// Zooms by `factor` around the viewport center of the last render
  /// (factor > 1 zooms out, < 1 zooms in; clamped to the series).
  /// Must be called after a successful Render.
  Result<ViewFrame> Zoom(double factor);

  /// Scrolls the last-rendered viewport by `delta` raw points
  /// (negative = left/earlier; clamped to the series).
  Result<ViewFrame> Scroll(long delta);

  /// Number of pyramid levels (level 0 is the raw series).
  size_t levels() const { return pyramid_.size(); }

  const TimeSeries& series() const { return series_; }

 private:
  Explorer(TimeSeries series, const ExplorerOptions& options);

  TimeSeries series_;
  ExplorerOptions options_;
  /// pyramid_[k] = means of 2^k consecutive raw points.
  std::vector<std::vector<double>> pyramid_;
  /// Per-level warm-start search state.
  std::map<size_t, AsapState> level_state_;
  /// Evaluation context rebound to the current viewport on every
  /// Render; Reset reuses its buffers so interactive pan/zoom stays
  /// allocation-stable (mirrors StreamingAsap's refresh path).
  SeriesContext ctx_;
  bool has_last_view_ = false;
  size_t last_begin_ = 0;
  size_t last_end_ = 0;
};

}  // namespace asap

#endif  // ASAP_CORE_EXPLORER_H_
