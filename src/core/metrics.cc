#include "core/metrics.h"

#include <cmath>

#include "common/macros.h"
#include "stats/descriptive.h"
#include "stats/welford.h"

namespace asap {

double Roughness(const std::vector<double>& x) {
  if (x.size() < 3) {
    return 0.0;
  }
  // One allocation-free pass via the generalized Welford accumulator
  // instead of materializing the difference series and sweeping it
  // twice; every caller (context construction, the naive evaluator,
  // the render metrics) shares the saving.
  stats::ScoreAccumulator acc;
  for (double v : x) {
    acc.Add(v);
  }
  return acc.roughness();
}

double Kurtosis(const std::vector<double>& x) { return stats::Kurtosis(x); }

double IidRoughness(double sigma, size_t w) {
  ASAP_CHECK_GE(w, 1u);
  return std::sqrt(2.0) * sigma / static_cast<double>(w);
}

double IidKurtosis(double kurtosis_x, size_t w) {
  ASAP_CHECK_GE(w, 1u);
  return 3.0 + (kurtosis_x - 3.0) / static_cast<double>(w);
}

double RoughnessEstimate(double sigma, size_t n, size_t w, double acf_w) {
  ASAP_CHECK_GE(w, 1u);
  ASAP_CHECK_GT(n, w);
  const double ratio =
      static_cast<double>(n) / static_cast<double>(n - w);
  double radicand = 1.0 - ratio * acf_w;
  if (radicand < 0.0) {
    radicand = 0.0;
  }
  return std::sqrt(2.0) * sigma / static_cast<double>(w) *
         std::sqrt(radicand);
}

bool EstimatedRougher(size_t w_candidate, double acf_candidate, size_t w_best,
                      double acf_best) {
  ASAP_CHECK_GE(w_candidate, 1u);
  ASAP_CHECK_GE(w_best, 1u);
  const double lhs = std::sqrt(std::max(0.0, 1.0 - acf_candidate)) /
                     static_cast<double>(w_candidate);
  const double rhs = std::sqrt(std::max(0.0, 1.0 - acf_best)) /
                     static_cast<double>(w_best);
  return lhs > rhs;
}

double WindowLowerBound(size_t w, double acf_w, double max_acf) {
  ASAP_CHECK_GE(w, 1u);
  const double denom = 1.0 - acf_w;
  if (denom <= 0.0) {
    // Perfectly correlated lag: nothing smaller can compete.
    return static_cast<double>(w);
  }
  double ratio = (1.0 - max_acf) / denom;
  if (ratio < 0.0) {
    ratio = 0.0;
  }
  return static_cast<double>(w) * std::sqrt(ratio);
}

}  // namespace asap
