// Streaming ASAP (paper §4.5, Algorithm 3).
//
// The operator ingests raw points, sub-aggregates them into panes
// sized at the point-to-pixel ratio (§4.4 applied to streams), retains
// the panes covering the visible time window, and re-runs the window
// search only at a configurable, human-perceptible refresh interval
// (on-demand updates). Each refresh:
//
//   1. UpdateAcf      — recompute the ACF over the visible panes;
//   2. CheckLastWindow — test whether the previous window is still
//      feasible; if so, seed the new search with it (warm start that
//      arms the roughness-estimate pruning immediately);
//   3. FindWindow     — run the (seeded) ASAP search and re-render.
//
// The preaggregation/strategy/refresh knobs exist so the Fig. 11
// factor analysis and lesion study can disable each optimization
// independently while exercising the identical pipeline.

#ifndef ASAP_CORE_STREAMING_ASAP_H_
#define ASAP_CORE_STREAMING_ASAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/series_context.h"
#include "core/smooth.h"
#include "window/panes.h"

namespace asap {

/// Configuration of the streaming operator.
struct StreamingOptions {
  /// Target display width in pixels.
  size_t resolution = 800;

  /// Raw points covered by the visible window (e.g. 30 min of 1 Hz
  /// telemetry = 1800). Required.
  size_t visible_points = 0;

  /// Raw points between refreshes. 0 = refresh whenever a pane
  /// completes (the non-lazy default); larger values are the
  /// "on-demand update" optimization (e.g. one day's worth of points).
  size_t refresh_every_points = 0;

  /// Disable to make panes one point wide (the Fig. 11 "no pixel"
  /// lesion).
  bool enable_preaggregation = true;

  /// Search strategy run at each refresh (the Fig. 11 "no AC" lesion
  /// replaces ASAP with exhaustive search).
  SearchStrategy strategy = SearchStrategy::kAsap;

  /// Published frames retained for snapshot readers (the snapshot
  /// ring). 1 keeps only the latest (the original behavior, with zero
  /// extra cost); K > 1 lets dashboard readers diff the last K
  /// refreshes for incremental rendering. Must be >= 1.
  size_t snapshot_ring_frames = 1;

  /// Timed pane mode. When pane_width_ticks > 0 the operator assigns
  /// points to panes by *timestamp* instead of arrival count: a point
  /// with timestamp ts lands in pane floor((ts - pane_epoch) /
  /// pane_width_ticks), ingested via PushTimed. The in-progress pane
  /// commits when a point of a different pane index arrives, so a
  /// pane holds however many points actually fell in its time bucket
  /// — the fix for the arrival-order pane-stamping bug class, where
  /// wall-clock skew between collectors smeared points across pane
  /// boundaries. 0 (the default) keeps the arrival-count mode bit-
  /// for-bit: Record::ts is never read. Both must be >= 0; choose
  /// pane_width_ticks so a bucket covers ~pane_size() points of the
  /// expected point rate (e.g. pane_size * tick period) — pane means
  /// then match the arrival-order pane means whenever input arrives
  /// in time order at a uniform rate.
  int64_t pane_epoch = 0;
  int64_t pane_width_ticks = 0;

  /// Window-search options.
  SearchOptions search;
};

/// The streaming ASAP operator.
class StreamingAsap {
 public:
  /// The most recent rendered frame plus lifetime counters.
  struct Frame {
    /// Smoothed visible series (empty until the first refresh).
    std::vector<double> series;
    /// Chosen SMA window in panes.
    size_t window = 1;
    /// Number of refreshes so far.
    uint64_t refreshes = 0;
    /// Searches that reused the previous window as a warm start.
    uint64_t seeded_searches = 0;
    /// Searches started from scratch (first refresh or failed
    /// CheckLastWindow).
    uint64_t cold_searches = 0;
    /// Total candidate windows evaluated across all refreshes
    /// (including the CheckLastWindow warm-start evaluation).
    uint64_t candidates_evaluated = 0;
    /// Of those, how many went through the fused zero-allocation
    /// ScoreWindow kernel (all of them unless
    /// SearchOptions::use_naive_evaluator is set).
    uint64_t allocation_free_evals = 0;
  };

  /// Validates options; fails if visible_points < 8 or resolution
  /// semantics are inconsistent.
  static Result<StreamingAsap> Create(const StreamingOptions& options);

  /// Ingests one raw point; returns true iff a refresh happened.
  bool Push(double x);

  /// Loads historical points into the pane buffer WITHOUT triggering
  /// refreshes (bootstrap from a backfill, or bench warm-up so that
  /// steady-state throughput is measured against a full window).
  void Prefill(const std::vector<double>& xs);

  /// Ingests a batch; returns the number of refreshes triggered.
  /// Fast path: points are bulk-appended a pane (or a refresh
  /// interval) at a time, with refresh boundaries checked per chunk
  /// instead of per point — refresh-for-refresh identical to calling
  /// Push() on each point.
  size_t PushBatch(const double* xs, size_t n);
  size_t PushBatch(const std::vector<double>& xs) {
    return PushBatch(xs.data(), xs.size());
  }

  /// Timed-mode batch ingest (requires pane_width_ticks > 0): point i
  /// carries value xs[i] and timestamp ts[i]; each lands in the pane
  /// its timestamp maps to (see StreamingOptions::pane_width_ticks).
  /// The refresh condition is checked per point exactly as Push()
  /// does. Returns the number of refreshes triggered. Callers feed
  /// points in non-decreasing ts order per series (the sequencer's
  /// output order); out-of-order input within a pane is tolerated,
  /// across panes it would reopen a committed bucket as a new pane.
  size_t PushTimed(const double* xs, const int64_t* ts, size_t n);

  /// Forces a refresh now (used when the user scrolls/zooms).
  /// No-op until at least 4 panes are buffered.
  void Refresh();

  /// Routes each completed pane's mean to `sink` (the durable-store
  /// hookup; see window::PaneBuffer::PaneSink). Pass nullptr to clear.
  void set_pane_sink(window::PaneBuffer::PaneSink sink, void* ctx) {
    panes_.set_pane_sink(sink, ctx);
  }

  /// Restores `n` recovered pane means as already-complete panes,
  /// advancing the point clock by n * pane_size and NOT firing the
  /// pane sink (the panes are already durable). With cadenced == true
  /// the refresh schedule live ingestion would have run is replayed
  /// pane by pane — frames (and the snapshot ring) come out identical
  /// to an uninterrupted run whenever refresh_interval_points is a
  /// multiple of pane_size (always true for the refresh-per-pane
  /// default). With cadenced == false the panes load in bulk and a
  /// single Refresh renders the final frame (fast-forward recovery).
  /// Only legal before any live point is pushed.
  void RestorePanes(const double* means, size_t n, bool cadenced);

  const Frame& frame() const { return frame_; }

  /// Snapshot of the most recent frame, safe to call from any thread
  /// while another thread is pushing points: each refresh publishes
  /// its frame behind an atomically swapped shared_ptr, so readers
  /// never block the ingest path and no copy is made to serve a read.
  /// Never null; before the first refresh it points at an empty Frame.
  std::shared_ptr<const Frame> frame_snapshot() const;

  /// The last min(snapshot_ring_frames, refreshes) published frames,
  /// oldest first (back() is the frame_snapshot() frame). Empty before
  /// the first refresh. Same thread-safety as frame_snapshot(): the
  /// ring is republished behind an atomically swapped shared_ptr, so
  /// readers never block the ingest path.
  std::vector<std::shared_ptr<const Frame>> FrameHistory() const;

  /// Raw points consumed so far.
  uint64_t points_consumed() const { return points_consumed_; }

  /// Points per pane (the point-to-pixel ratio in effect).
  size_t pane_size() const { return pane_size_; }

  /// Raw points between refreshes in effect.
  size_t refresh_interval_points() const { return refresh_interval_points_; }

 private:
  explicit StreamingAsap(const StreamingOptions& options);

  StreamingOptions options_;
  size_t pane_size_ = 1;
  size_t refresh_interval_points_ = 1;
  window::PaneBuffer panes_;
  uint64_t points_consumed_ = 0;
  uint64_t points_since_refresh_ = 0;

  AsapState state_;
  /// Evaluation context rebuilt from the pane buffer at every refresh
  /// (Reset reuses its buffers, so steady-state refreshes stay
  /// allocation-stable); candidate scoring runs through its fused
  /// zero-allocation kernel.
  SeriesContext ctx_;
  bool has_previous_window_ = false;
  size_t previous_window_ = 1;
  Frame frame_;
  /// Published copy of frame_ when snapshot_ring_frames == 1, swapped
  /// atomically at the end of each refresh; with K > 1 it only holds
  /// the pre-first-refresh empty frame (the ring publishes instead).
  std::shared_ptr<const Frame> published_;
  /// The snapshot ring (oldest first): the single publication point
  /// when snapshot_ring_frames > 1, so frame_snapshot() (serving
  /// back()) and FrameHistory() can never be observed out of step.
  using FrameRing = std::vector<std::shared_ptr<const Frame>>;
  std::shared_ptr<const FrameRing> published_ring_;
};

}  // namespace asap

#endif  // ASAP_CORE_STREAMING_ASAP_H_
