// AVX2 implementations of the kernel table. Built with -mavx2 (but
// deliberately NOT -mfma: the canonical reduction shape has no fused
// multiply-adds) and -ffp-contract=off. Every function computes the
// exact FP operation DAG the scalar reference in kernels.cc emulates:
// 4 independent accumulator lanes, lane merge (l0 + l2) + (l1 + l3)
// via low/high-half add + horizontal add, min/max via the vminpd /
// vmaxpd select semantics, and a scalar tail identical to the scalar
// path's. See core/kernels.h for the contract.

#include "core/kernels.h"

#if defined(__AVX2__) && defined(__x86_64__) && !defined(ASAP_DISABLE_SIMD)

#include <immintrin.h>

#include <cmath>
#include <limits>

namespace asap {
namespace kern {
namespace {

// (l0 + l2) + (l1 + l3): add the register's low and high 128-bit
// halves, then the two remaining lanes.
inline double MergeAdd(__m256d v) {
  const __m128d halves =
      _mm_add_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
  return _mm_cvtsd_f64(halves) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(halves, halves));
}

// ((l0 > l2) ? l0 : l2) > ((l1 > l3) ? l1 : l3) select-merge.
inline double MergeMax(__m256d v) {
  const __m128d halves =
      _mm_max_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
  const double a = _mm_cvtsd_f64(halves);
  const double b = _mm_cvtsd_f64(_mm_unpackhi_pd(halves, halves));
  return (a > b) ? a : b;
}

inline double MergeMin(__m256d v) {
  const __m128d halves =
      _mm_min_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
  const double a = _mm_cvtsd_f64(halves);
  const double b = _mm_cvtsd_f64(_mm_unpackhi_pd(halves, halves));
  return (a < b) ? a : b;
}

MomentPartials ScoreSegmentAvx2(const double* prefix, size_t w,
                                double inv_w, double mean_u, double mean_d,
                                size_t begin, size_t end) {
  MomentPartials out;
  if (begin >= end) {
    return out;
  }
  const size_t n4 = begin + (end - begin) / 4 * 4;
  const __m256d vinvw = _mm256_set1_pd(inv_w);
  const __m256d vmu = _mm256_set1_pd(mean_u);
  const __m256d vmd = _mm256_set1_pd(mean_d);
  __m256d vs2 = _mm256_setzero_pd();
  __m256d vs4 = _mm256_setzero_pd();
  __m256d vsd2 = _mm256_setzero_pd();
  for (size_t i = begin; i < n4; i += 4) {
    const __m256d u = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_loadu_pd(prefix + i + w),
                      _mm256_loadu_pd(prefix + i)),
        vinvw);
    const __m256d up = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_loadu_pd(prefix + i + w - 1),
                      _mm256_loadu_pd(prefix + i - 1)),
        vinvw);
    const __m256d dy = _mm256_sub_pd(u, vmu);
    const __m256d dy2 = _mm256_mul_pd(dy, dy);
    vs2 = _mm256_add_pd(vs2, dy2);
    vs4 = _mm256_add_pd(vs4, _mm256_mul_pd(dy2, dy2));
    const __m256d dd = _mm256_sub_pd(_mm256_sub_pd(u, up), vmd);
    vsd2 = _mm256_add_pd(vsd2, _mm256_mul_pd(dd, dd));
  }
  out.s2 = MergeAdd(vs2);
  out.s4 = MergeAdd(vs4);
  out.sd2 = MergeAdd(vsd2);
  for (size_t j = n4; j < end; ++j) {
    const double u = (prefix[j + w] - prefix[j]) * inv_w;
    const double up = (prefix[j + w - 1] - prefix[j - 1]) * inv_w;
    const double dy = u - mean_u;
    const double dy2 = dy * dy;
    out.s2 += dy2;
    out.s4 += dy2 * dy2;
    const double dd = (u - up) - mean_d;
    out.sd2 += dd * dd;
  }
  return out;
}

AbsDeltaPartials AbsDeltaAvx2(const double* newer, const double* older,
                              size_t len, double* delta) {
  AbsDeltaPartials out;
  const size_t n4 = len / 4 * 4;
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d vsum = _mm256_setzero_pd();
  __m256d vmax = _mm256_setzero_pd();
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(newer + i), _mm256_loadu_pd(older + i));
    _mm256_storeu_pd(delta + i, d);
    const __m256d a = _mm256_and_pd(d, abs_mask);
    vsum = _mm256_add_pd(vsum, a);
    // vmaxpd(a, acc): (a > acc) ? a : acc — NaN keeps the accumulator.
    vmax = _mm256_max_pd(a, vmax);
  }
  out.sum_abs = MergeAdd(vsum);
  out.max_abs = MergeMax(vmax);
  for (size_t j = n4; j < len; ++j) {
    const double d = newer[j] - older[j];
    delta[j] = d;
    const double a = std::fabs(d);
    out.sum_abs += a;
    out.max_abs = (a > out.max_abs) ? a : out.max_abs;
  }
  return out;
}

void Gather4Avx2(const double* const* bases, size_t offset, size_t count,
                 double* c0, double* c1, double* c2, double* c3) {
  size_t s = 0;
  for (; s + 4 <= count; s += 4) {
    // 4x4 transpose: rows are 4 consecutive positions of one series,
    // columns are 4 series at one position.
    const __m256d r0 = _mm256_loadu_pd(bases[s] + offset);
    const __m256d r1 = _mm256_loadu_pd(bases[s + 1] + offset);
    const __m256d r2 = _mm256_loadu_pd(bases[s + 2] + offset);
    const __m256d r3 = _mm256_loadu_pd(bases[s + 3] + offset);
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);  // r0[0] r1[0] r0[2] r1[2]
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);  // r0[1] r1[1] r0[3] r1[3]
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    _mm256_storeu_pd(c0 + s, _mm256_permute2f128_pd(t0, t2, 0x20));
    _mm256_storeu_pd(c1 + s, _mm256_permute2f128_pd(t1, t3, 0x20));
    _mm256_storeu_pd(c2 + s, _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_storeu_pd(c3 + s, _mm256_permute2f128_pd(t1, t3, 0x31));
  }
  for (; s < count; ++s) {
    const double* r = bases[s] + offset;
    c0[s] = r[0];
    c1[s] = r[1];
    c2[s] = r[2];
    c3[s] = r[3];
  }
}

ColumnMinMax ColumnMinMaxAvx2(const double* col, size_t n) {
  ColumnMinMax out;
  const double inf = std::numeric_limits<double>::infinity();
  __m256d vmn = _mm256_set1_pd(inf);
  __m256d vmx = _mm256_set1_pd(-inf);
  __m256d vnan = _mm256_setzero_pd();
  const size_t n4 = n / 4 * 4;
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d v = _mm256_loadu_pd(col + i);
    vnan = _mm256_or_pd(vnan, _mm256_cmp_pd(v, v, _CMP_UNORD_Q));
    // vminpd(v, acc): (v < acc) ? v : acc — NaN keeps the accumulator.
    vmn = _mm256_min_pd(v, vmn);
    vmx = _mm256_max_pd(v, vmx);
  }
  out.min_v = MergeMin(vmn);
  out.max_v = MergeMax(vmx);
  bool has_nan = _mm256_movemask_pd(vnan) != 0;
  for (size_t i = n4; i < n; ++i) {
    const double v = col[i];
    has_nan = has_nan || (v != v);
    out.min_v = (v < out.min_v) ? v : out.min_v;
    out.max_v = (v > out.max_v) ? v : out.max_v;
  }
  out.has_nan = has_nan;
  return out;
}

void BucketizeAvx2(const double* col, size_t n, double min_v, double scale,
                   unsigned char* bucket, unsigned int* hist256) {
  const __m256d vmin = _mm256_set1_pd(min_v);
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d v255 = _mm256_set1_pd(255.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d t =
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(col + i), vmin), vscale);
    t = _mm256_max_pd(t, vzero);  // (t > 0) ? t : 0 — NaN clamps to 0
    t = _mm256_min_pd(t, v255);   // (t < 255) ? t : 255
    const __m128i b = _mm256_cvttpd_epi32(t);  // truncation, like (int)t
    const unsigned char b0 =
        static_cast<unsigned char>(_mm_extract_epi32(b, 0));
    const unsigned char b1 =
        static_cast<unsigned char>(_mm_extract_epi32(b, 1));
    const unsigned char b2 =
        static_cast<unsigned char>(_mm_extract_epi32(b, 2));
    const unsigned char b3 =
        static_cast<unsigned char>(_mm_extract_epi32(b, 3));
    bucket[i] = b0;
    bucket[i + 1] = b1;
    bucket[i + 2] = b2;
    bucket[i + 3] = b3;
    ++hist256[b0];
    ++hist256[b1];
    ++hist256[b2];
    ++hist256[b3];
  }
  for (; i < n; ++i) {
    double t = (col[i] - min_v) * scale;
    t = (t > 0.0) ? t : 0.0;
    t = (t < 255.0) ? t : 255.0;
    const unsigned char b = static_cast<unsigned char>(static_cast<int>(t));
    bucket[i] = b;
    ++hist256[b];
  }
}

void ComplexNormAvx2(double* interleaved, size_t n_complex) {
  const __m256d vzero = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 2 <= n_complex; k += 2) {
    const __m256d v = _mm256_loadu_pd(interleaved + 2 * k);
    const __m256d sq = _mm256_mul_pd(v, v);
    // hadd(sq, 0) = (re0^2 + im0^2, 0, re1^2 + im1^2, 0): the scalar
    // path's re*re + im*im in the same order, zeroing the imaginary
    // slots in the same store.
    _mm256_storeu_pd(interleaved + 2 * k, _mm256_hadd_pd(sq, vzero));
  }
  for (; k < n_complex; ++k) {
    const double re = interleaved[2 * k];
    const double im = interleaved[2 * k + 1];
    interleaved[2 * k] = re * re + im * im;
    interleaved[2 * k + 1] = 0.0;
  }
}

const KernelTable kAvx2Table = {
    "avx2",           ScoreSegmentAvx2, AbsDeltaAvx2, Gather4Avx2,
    ColumnMinMaxAvx2, BucketizeAvx2,    ComplexNormAvx2,
};

}  // namespace

namespace internal {

const KernelTable* GetAvx2Kernels() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Table : nullptr;
}

}  // namespace internal
}  // namespace kern
}  // namespace asap

#else  // !(__AVX2__ && __x86_64__ && !ASAP_DISABLE_SIMD)

namespace asap {
namespace kern {
namespace internal {

const KernelTable* GetAvx2Kernels() { return nullptr; }

}  // namespace internal
}  // namespace kern
}  // namespace asap

#endif
