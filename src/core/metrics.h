// ASAP's two quality metrics (paper §3) plus the closed-form roughness
// estimate used for pruning (paper §4.3, Eq. 5).
//
//   roughness(X) = stddev of the first-difference series  (minimize)
//   kurtosis(X)  = fourth standardized moment             (preserve)

#ifndef ASAP_CORE_METRICS_H_
#define ASAP_CORE_METRICS_H_

#include <cstddef>
#include <vector>

namespace asap {

/// Roughness: population standard deviation of {x_{i+1} - x_i}.
/// 0 for series shorter than 3 points (a two-point series is a straight
/// line segment; the paper's Fig. 4 anchors: a straight line has
/// roughness exactly 0).
double Roughness(const std::vector<double>& x);

/// Non-excess kurtosis (normal = 3, Laplace = 6); 0 for degenerate input.
double Kurtosis(const std::vector<double>& x);

/// Eq. 2: expected roughness of SMA(X, w) when X is IID with standard
/// deviation sigma: sqrt(2) * sigma / w.
double IidRoughness(double sigma, size_t w);

/// Eq. 4: expected kurtosis of SMA(X, w) when X is IID with kurtosis k:
/// 3 + (k - 3) / w.
double IidKurtosis(double kurtosis_x, size_t w);

/// Eq. 5: estimated roughness of SMA(X, w) for weakly stationary X with
/// standard deviation sigma, length n, and lag-w autocorrelation acf_w:
///
///   sqrt(2) * sigma / w * sqrt(1 - n / (n - w) * acf_w)
///
/// The radicand is clamped at 0 (it can dip below for strongly
/// correlated lags where the estimator's assumptions fray).
double RoughnessEstimate(double sigma, size_t n, size_t w, double acf_w);

/// The pruning comparator of Algorithm 1 (IsRoughER): true iff the
/// Eq.-5 *relative* roughness of window `w_candidate` exceeds that of
/// `w_best`, i.e. sqrt(1-acf[cand])/cand > sqrt(1-acf[best])/best.
bool EstimatedRougher(size_t w_candidate, double acf_candidate, size_t w_best,
                      double acf_best);

/// Eq. 6 lower-bound update (UpdateLB): the smallest window that could
/// beat a feasible window `w` with autocorrelation acf_w, given the
/// global maximum ACF peak max_acf:  w * sqrt((1 - max_acf)/(1 - acf_w)).
double WindowLowerBound(size_t w, double acf_w, double max_acf);

}  // namespace asap

#endif  // ASAP_CORE_METRICS_H_
