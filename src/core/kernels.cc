// Scalar reference implementations of the kernel table, written to
// emulate the canonical 4-lane reduction shape exactly (see
// core/kernels.h). This translation unit is built with
// -ffp-contract=off so no multiply-add here can be contracted into an
// FMA the vector paths do not perform.

#include "core/kernels.h"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace asap {
namespace kern {

namespace {

MomentPartials ScoreSegmentScalar(const double* prefix, size_t w,
                                  double inv_w, double mean_u, double mean_d,
                                  size_t begin, size_t end) {
  MomentPartials out;
  if (begin >= end) {
    return out;
  }
  const size_t n4 = begin + (end - begin) / 4 * 4;
  double s2[4] = {0.0, 0.0, 0.0, 0.0};
  double s4[4] = {0.0, 0.0, 0.0, 0.0};
  double sd2[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = begin; i < n4; i += 4) {
    for (int l = 0; l < 4; ++l) {
      const size_t j = i + static_cast<size_t>(l);
      const double u = (prefix[j + w] - prefix[j]) * inv_w;
      const double up = (prefix[j + w - 1] - prefix[j - 1]) * inv_w;
      const double dy = u - mean_u;
      const double dy2 = dy * dy;
      s2[l] += dy2;
      s4[l] += dy2 * dy2;
      const double dd = (u - up) - mean_d;
      sd2[l] += dd * dd;
    }
  }
  out.s2 = (s2[0] + s2[2]) + (s2[1] + s2[3]);
  out.s4 = (s4[0] + s4[2]) + (s4[1] + s4[3]);
  out.sd2 = (sd2[0] + sd2[2]) + (sd2[1] + sd2[3]);
  for (size_t j = n4; j < end; ++j) {
    const double u = (prefix[j + w] - prefix[j]) * inv_w;
    const double up = (prefix[j + w - 1] - prefix[j - 1]) * inv_w;
    const double dy = u - mean_u;
    const double dy2 = dy * dy;
    out.s2 += dy2;
    out.s4 += dy2 * dy2;
    const double dd = (u - up) - mean_d;
    out.sd2 += dd * dd;
  }
  return out;
}

AbsDeltaPartials AbsDeltaScalar(const double* newer, const double* older,
                                size_t len, double* delta) {
  AbsDeltaPartials out;
  const size_t n4 = len / 4 * 4;
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  double mx[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n4; i += 4) {
    for (int l = 0; l < 4; ++l) {
      const size_t j = i + static_cast<size_t>(l);
      const double d = newer[j] - older[j];
      delta[j] = d;
      const double a = std::fabs(d);
      s[l] += a;
      mx[l] = (a > mx[l]) ? a : mx[l];
    }
  }
  out.sum_abs = (s[0] + s[2]) + (s[1] + s[3]);
  const double m02 = (mx[0] > mx[2]) ? mx[0] : mx[2];
  const double m13 = (mx[1] > mx[3]) ? mx[1] : mx[3];
  out.max_abs = (m02 > m13) ? m02 : m13;
  for (size_t j = n4; j < len; ++j) {
    const double d = newer[j] - older[j];
    delta[j] = d;
    const double a = std::fabs(d);
    out.sum_abs += a;
    out.max_abs = (a > out.max_abs) ? a : out.max_abs;
  }
  return out;
}

void Gather4Scalar(const double* const* bases, size_t offset, size_t count,
                   double* c0, double* c1, double* c2, double* c3) {
  for (size_t s = 0; s < count; ++s) {
    const double* r = bases[s] + offset;
    c0[s] = r[0];
    c1[s] = r[1];
    c2[s] = r[2];
    c3[s] = r[3];
  }
}

ColumnMinMax ColumnMinMaxScalar(const double* col, size_t n) {
  ColumnMinMax out;
  const double inf = std::numeric_limits<double>::infinity();
  double mn[4] = {inf, inf, inf, inf};
  double mx[4] = {-inf, -inf, -inf, -inf};
  bool has_nan = false;
  const size_t n4 = n / 4 * 4;
  for (size_t i = 0; i < n4; i += 4) {
    for (int l = 0; l < 4; ++l) {
      const double v = col[i + static_cast<size_t>(l)];
      has_nan = has_nan || (v != v);
      mn[l] = (v < mn[l]) ? v : mn[l];
      mx[l] = (v > mx[l]) ? v : mx[l];
    }
  }
  const double lo02 = (mn[0] < mn[2]) ? mn[0] : mn[2];
  const double lo13 = (mn[1] < mn[3]) ? mn[1] : mn[3];
  out.min_v = (lo02 < lo13) ? lo02 : lo13;
  const double hi02 = (mx[0] > mx[2]) ? mx[0] : mx[2];
  const double hi13 = (mx[1] > mx[3]) ? mx[1] : mx[3];
  out.max_v = (hi02 > hi13) ? hi02 : hi13;
  for (size_t i = n4; i < n; ++i) {
    const double v = col[i];
    has_nan = has_nan || (v != v);
    out.min_v = (v < out.min_v) ? v : out.min_v;
    out.max_v = (v > out.max_v) ? v : out.max_v;
  }
  out.has_nan = has_nan;
  return out;
}

void BucketizeScalar(const double* col, size_t n, double min_v, double scale,
                     unsigned char* bucket, unsigned int* hist256) {
  for (size_t i = 0; i < n; ++i) {
    double t = (col[i] - min_v) * scale;
    t = (t > 0.0) ? t : 0.0;
    t = (t < 255.0) ? t : 255.0;
    const unsigned char b = static_cast<unsigned char>(static_cast<int>(t));
    bucket[i] = b;
    ++hist256[b];
  }
}

void ComplexNormScalar(double* interleaved, size_t n_complex) {
  for (size_t k = 0; k < n_complex; ++k) {
    const double re = interleaved[2 * k];
    const double im = interleaved[2 * k + 1];
    interleaved[2 * k] = re * re + im * im;
    interleaved[2 * k + 1] = 0.0;
  }
}

const KernelTable kScalarTable = {
    "scalar",          ScoreSegmentScalar, AbsDeltaScalar, Gather4Scalar,
    ColumnMinMaxScalar, BucketizeScalar,   ComplexNormScalar,
};

const KernelTable* PickSimdTable() {
#if defined(ASAP_DISABLE_SIMD)
  return nullptr;
#else
  if (std::getenv("ASAP_DISABLE_SIMD") != nullptr) {
    return nullptr;
  }
  if (const KernelTable* t = internal::GetNeonKernels()) {
    return t;
  }
  if (const KernelTable* t = internal::GetAvx2Kernels()) {
    return t;
  }
  return nullptr;
#endif
}

}  // namespace

const KernelTable& ScalarKernels() { return kScalarTable; }

const KernelTable& ActiveKernels(SimdMode mode) {
  static const KernelTable* simd = PickSimdTable();
  if (mode == SimdMode::kScalar || simd == nullptr) {
    return kScalarTable;
  }
  return *simd;
}

bool SimdAvailable() {
  return &ActiveKernels(SimdMode::kAuto) != &kScalarTable;
}

}  // namespace kern
}  // namespace asap
