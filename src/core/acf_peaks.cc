#include "core/acf_peaks.h"

#include <algorithm>

#include "common/macros.h"
#include "fft/autocorrelation.h"

namespace asap {

std::vector<size_t> FindAcfPeaks(const std::vector<double>& acf,
                                 double peak_threshold) {
  std::vector<size_t> peaks;
  if (acf.size() < 3) {
    return peaks;
  }
  // Lag 0 is trivially 1 and lag 1 reflects sampling continuity rather
  // than periodicity; peaks start at lag 2.
  for (size_t k = 2; k + 1 < acf.size(); ++k) {
    if (acf[k] > acf[k - 1] && acf[k] >= acf[k + 1] &&
        acf[k] > peak_threshold) {
      peaks.push_back(k);
    }
  }
  return peaks;
}

AcfInfo ComputeAcfInfo(const std::vector<double>& series, size_t max_lag,
                       double peak_threshold, const ExecPolicy& policy) {
  ASAP_CHECK_GE(series.size(), 2u);
  max_lag = std::min(max_lag, series.size() - 1);
  AcfInfo info;
  info.correlations = fft::AutocorrelationFft(series, max_lag, policy);
  info.peaks = FindAcfPeaks(info.correlations, peak_threshold);
  for (size_t p : info.peaks) {
    info.max_acf = std::max(info.max_acf, info.correlations[p]);
  }
  return info;
}

}  // namespace asap
