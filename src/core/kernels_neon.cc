// NEON (AArch64) implementations of the kernel table. Built with
// -ffp-contract=off (the AArch64 baseline has FMA; the canonical
// reduction shape does not). NEON registers are 2 doubles wide, so
// the canonical 4 lanes live in two registers: A = lanes (0, 1),
// B = lanes (2, 3); the merge vaddq(A, B) then lane0 + lane1 is
// exactly (l0 + l2) + (l1 + l3). Min/max use the compare + select
// idiom (vcgtq/vcltq + vbslq), NOT vmaxq/vminq — ARM's fmax/fmin
// propagate NaN, which would diverge from the canonical
// `(a > b) ? a : b` select semantics. Kernels with no cross-element
// reduction (gather4, bucketize, complex_norm) are per-element exact
// in any implementation; they use the plain scalar loops here.

#include "core/kernels.h"

#if defined(__aarch64__) && !defined(ASAP_DISABLE_SIMD)

#include <arm_neon.h>

#include <cmath>
#include <limits>

namespace asap {
namespace kern {
namespace {

inline float64x2_t SelectMax(float64x2_t a, float64x2_t acc) {
  // (a > acc) ? a : acc, NaN keeps the accumulator.
  return vbslq_f64(vcgtq_f64(a, acc), a, acc);
}

inline float64x2_t SelectMin(float64x2_t a, float64x2_t acc) {
  return vbslq_f64(vcltq_f64(a, acc), a, acc);
}

inline double MergeAdd(float64x2_t a, float64x2_t b) {
  const float64x2_t halves = vaddq_f64(a, b);  // (l0 + l2, l1 + l3)
  return vgetq_lane_f64(halves, 0) + vgetq_lane_f64(halves, 1);
}

MomentPartials ScoreSegmentNeon(const double* prefix, size_t w,
                                double inv_w, double mean_u, double mean_d,
                                size_t begin, size_t end) {
  MomentPartials out;
  if (begin >= end) {
    return out;
  }
  const size_t n4 = begin + (end - begin) / 4 * 4;
  const float64x2_t vinvw = vdupq_n_f64(inv_w);
  const float64x2_t vmu = vdupq_n_f64(mean_u);
  const float64x2_t vmd = vdupq_n_f64(mean_d);
  float64x2_t s2a = vdupq_n_f64(0.0), s2b = vdupq_n_f64(0.0);
  float64x2_t s4a = vdupq_n_f64(0.0), s4b = vdupq_n_f64(0.0);
  float64x2_t sd2a = vdupq_n_f64(0.0), sd2b = vdupq_n_f64(0.0);
  for (size_t i = begin; i < n4; i += 4) {
    const float64x2_t ua = vmulq_f64(
        vsubq_f64(vld1q_f64(prefix + i + w), vld1q_f64(prefix + i)), vinvw);
    const float64x2_t ub = vmulq_f64(
        vsubq_f64(vld1q_f64(prefix + i + 2 + w), vld1q_f64(prefix + i + 2)),
        vinvw);
    const float64x2_t upa = vmulq_f64(
        vsubq_f64(vld1q_f64(prefix + i + w - 1), vld1q_f64(prefix + i - 1)),
        vinvw);
    const float64x2_t upb = vmulq_f64(
        vsubq_f64(vld1q_f64(prefix + i + 1 + w), vld1q_f64(prefix + i + 1)),
        vinvw);
    const float64x2_t dya = vsubq_f64(ua, vmu);
    const float64x2_t dyb = vsubq_f64(ub, vmu);
    const float64x2_t dy2a = vmulq_f64(dya, dya);
    const float64x2_t dy2b = vmulq_f64(dyb, dyb);
    s2a = vaddq_f64(s2a, dy2a);
    s2b = vaddq_f64(s2b, dy2b);
    s4a = vaddq_f64(s4a, vmulq_f64(dy2a, dy2a));
    s4b = vaddq_f64(s4b, vmulq_f64(dy2b, dy2b));
    const float64x2_t dda = vsubq_f64(vsubq_f64(ua, upa), vmd);
    const float64x2_t ddb = vsubq_f64(vsubq_f64(ub, upb), vmd);
    sd2a = vaddq_f64(sd2a, vmulq_f64(dda, dda));
    sd2b = vaddq_f64(sd2b, vmulq_f64(ddb, ddb));
  }
  out.s2 = MergeAdd(s2a, s2b);
  out.s4 = MergeAdd(s4a, s4b);
  out.sd2 = MergeAdd(sd2a, sd2b);
  for (size_t j = n4; j < end; ++j) {
    const double u = (prefix[j + w] - prefix[j]) * inv_w;
    const double up = (prefix[j + w - 1] - prefix[j - 1]) * inv_w;
    const double dy = u - mean_u;
    const double dy2 = dy * dy;
    out.s2 += dy2;
    out.s4 += dy2 * dy2;
    const double dd = (u - up) - mean_d;
    out.sd2 += dd * dd;
  }
  return out;
}

AbsDeltaPartials AbsDeltaNeon(const double* newer, const double* older,
                              size_t len, double* delta) {
  AbsDeltaPartials out;
  const size_t n4 = len / 4 * 4;
  float64x2_t suma = vdupq_n_f64(0.0), sumb = vdupq_n_f64(0.0);
  float64x2_t maxa = vdupq_n_f64(0.0), maxb = vdupq_n_f64(0.0);
  for (size_t i = 0; i < n4; i += 4) {
    const float64x2_t da =
        vsubq_f64(vld1q_f64(newer + i), vld1q_f64(older + i));
    const float64x2_t db =
        vsubq_f64(vld1q_f64(newer + i + 2), vld1q_f64(older + i + 2));
    vst1q_f64(delta + i, da);
    vst1q_f64(delta + i + 2, db);
    const float64x2_t aa = vabsq_f64(da);
    const float64x2_t ab = vabsq_f64(db);
    suma = vaddq_f64(suma, aa);
    sumb = vaddq_f64(sumb, ab);
    maxa = SelectMax(aa, maxa);
    maxb = SelectMax(ab, maxb);
  }
  out.sum_abs = MergeAdd(suma, sumb);
  // A holds lanes (0, 1), B lanes (2, 3): SelectMax(A, B) is the
  // canonical pairwise (l0, l2) / (l1, l3) merge; finish scalar.
  const float64x2_t mm = SelectMax(maxa, maxb);
  const double m02 = vgetq_lane_f64(mm, 0);
  const double m13 = vgetq_lane_f64(mm, 1);
  out.max_abs = (m02 > m13) ? m02 : m13;
  for (size_t j = n4; j < len; ++j) {
    const double d = newer[j] - older[j];
    delta[j] = d;
    const double a = std::fabs(d);
    out.sum_abs += a;
    out.max_abs = (a > out.max_abs) ? a : out.max_abs;
  }
  return out;
}

ColumnMinMax ColumnMinMaxNeon(const double* col, size_t n) {
  ColumnMinMax out;
  const double inf = std::numeric_limits<double>::infinity();
  float64x2_t mna = vdupq_n_f64(inf), mnb = vdupq_n_f64(inf);
  float64x2_t mxa = vdupq_n_f64(-inf), mxb = vdupq_n_f64(-inf);
  uint64x2_t nana = vdupq_n_u64(0), nanb = vdupq_n_u64(0);
  const size_t n4 = n / 4 * 4;
  for (size_t i = 0; i < n4; i += 4) {
    const float64x2_t va = vld1q_f64(col + i);
    const float64x2_t vb = vld1q_f64(col + i + 2);
    // v == v is false only for NaN.
    nana = vorrq_u64(nana, veorq_u64(vceqq_f64(va, va), vdupq_n_u64(~0ull)));
    nanb = vorrq_u64(nanb, veorq_u64(vceqq_f64(vb, vb), vdupq_n_u64(~0ull)));
    mna = SelectMin(va, mna);
    mnb = SelectMin(vb, mnb);
    mxa = SelectMax(va, mxa);
    mxb = SelectMax(vb, mxb);
  }
  const float64x2_t mn = SelectMin(mna, mnb);
  const double lo02 = vgetq_lane_f64(mn, 0);
  const double lo13 = vgetq_lane_f64(mn, 1);
  out.min_v = (lo02 < lo13) ? lo02 : lo13;
  const float64x2_t mx = SelectMax(mxa, mxb);
  const double hi02 = vgetq_lane_f64(mx, 0);
  const double hi13 = vgetq_lane_f64(mx, 1);
  out.max_v = (hi02 > hi13) ? hi02 : hi13;
  bool has_nan = (vgetq_lane_u64(nana, 0) | vgetq_lane_u64(nana, 1) |
                  vgetq_lane_u64(nanb, 0) | vgetq_lane_u64(nanb, 1)) != 0;
  for (size_t i = n4; i < n; ++i) {
    const double v = col[i];
    has_nan = has_nan || (v != v);
    out.min_v = (v < out.min_v) ? v : out.min_v;
    out.max_v = (v > out.max_v) ? v : out.max_v;
  }
  out.has_nan = has_nan;
  return out;
}

void Gather4Neon(const double* const* bases, size_t offset, size_t count,
                 double* c0, double* c1, double* c2, double* c3) {
  for (size_t s = 0; s < count; ++s) {
    const double* r = bases[s] + offset;
    c0[s] = r[0];
    c1[s] = r[1];
    c2[s] = r[2];
    c3[s] = r[3];
  }
}

void BucketizeNeon(const double* col, size_t n, double min_v, double scale,
                   unsigned char* bucket, unsigned int* hist256) {
  for (size_t i = 0; i < n; ++i) {
    double t = (col[i] - min_v) * scale;
    t = (t > 0.0) ? t : 0.0;
    t = (t < 255.0) ? t : 255.0;
    const unsigned char b = static_cast<unsigned char>(static_cast<int>(t));
    bucket[i] = b;
    ++hist256[b];
  }
}

void ComplexNormNeon(double* interleaved, size_t n_complex) {
  for (size_t k = 0; k < n_complex; ++k) {
    const double re = interleaved[2 * k];
    const double im = interleaved[2 * k + 1];
    interleaved[2 * k] = re * re + im * im;
    interleaved[2 * k + 1] = 0.0;
  }
}

const KernelTable kNeonTable = {
    "neon",           ScoreSegmentNeon, AbsDeltaNeon, Gather4Neon,
    ColumnMinMaxNeon, BucketizeNeon,    ComplexNormNeon,
};

}  // namespace

namespace internal {

const KernelTable* GetNeonKernels() { return &kNeonTable; }

}  // namespace internal
}  // namespace kern
}  // namespace asap

#else  // !(__aarch64__ && !ASAP_DISABLE_SIMD)

namespace asap {
namespace kern {
namespace internal {

const KernelTable* GetNeonKernels() { return nullptr; }

}  // namespace internal
}  // namespace kern
}  // namespace asap

#endif
