// Zero-allocation candidate-window evaluation (the window-search hot
// path).
//
// Every search strategy scores candidate windows w by the roughness and
// kurtosis of SMA(X, w) (§3.4). The naive evaluator materializes the
// smoothed series, its first differences, and runs separate moment
// passes — O(N) heap allocations and several memory sweeps per
// candidate. SeriesContext instead precomputes, once per series:
//
//   * a mean-centered prefix-sum array of X, so any SMA(X, w) value is
//     two loads and a subtract (centering keeps the prefix magnitudes
//     ~ sqrt(N) * sigma instead of N * mean, which preserves ~1e-9
//     agreement with the naive evaluator even on long series);
//   * Roughness(X) and Kurtosis(X) (every strategy needs the kurtosis
//     bound, and both are the exact w == 1 score);
//   * the FFT autocorrelation summary, on request, cached per
//     (max_lag, threshold) so batch and streaming searches share it.
//
// ScoreWindow(ctx, w) then fuses smoothing and scoring into a single
// allocation-free pass that tracks the 4th central moment of the
// smoothed values and the variance of their first differences
// simultaneously. Because both stream means are O(1) expressions over
// the precomputed prefix arrays, the kernel accumulates *central*
// moments directly — no per-point Welford rescaling. When values
// arrive one at a time with no precomputed mean (streaming
// sub-aggregation), stats::ScoreAccumulator is the online
// generalization of the same running state. The naive EvaluateWindow
// (core/search.h) is kept as the reference implementation; tests
// assert score parity within 1e-9.

#ifndef ASAP_CORE_SERIES_CONTEXT_H_
#define ASAP_CORE_SERIES_CONTEXT_H_

#include <cstddef>
#include <vector>

#include "common/exec_policy.h"
#include "core/acf_peaks.h"

namespace asap {

struct CandidateScore;  // core/search.h

/// Per-series evaluation state shared by all candidate evaluations.
/// Owns a copy of the series, so it has no lifetime coupling to the
/// caller's buffer; Reset() reuses all internal capacity, which is what
/// the streaming refresh path relies on to stay allocation-stable.
class SeriesContext {
 public:
  SeriesContext() = default;
  explicit SeriesContext(const std::vector<double>& x);

  /// Rebinds the context to a new series, reusing internal buffers
  /// (prefix sums are rebuilt, cached metrics recomputed, cached ACF
  /// invalidated).
  void Reset(const std::vector<double>& x);

  size_t size() const { return x_.size(); }
  bool empty() const { return x_.empty(); }

  /// The series this context evaluates.
  const std::vector<double>& x() const { return x_; }

  /// Mean of the series (the prefix-sum centering offset).
  double mean() const { return mean_; }

  /// Roughness(x), cached (also the exact w == 1 roughness score).
  double roughness() const { return roughness_; }

  /// Kurtosis(x), cached (the feasibility bound of every search).
  double kurtosis() const { return kurtosis_; }

  /// SMA(x, w)[i] in O(1): two prefix loads and a subtract.
  /// Requires 1 <= w <= size() and i + w <= size().
  double SmaAt(size_t w, size_t i) const;

  /// FFT autocorrelation summary up to max_lag, computed on first
  /// request and cached per exact (max_lag, threshold) pair, so search
  /// results never depend on what an earlier caller requested. The
  /// policy affects only how fast the ACF is computed, never its
  /// values, so it is deliberately not part of the cache key.
  const AcfInfo& EnsureAcf(size_t max_lag, double peak_threshold,
                           const ExecPolicy& policy = {});

  /// Centered prefix sums: prefix()[i] = sum_{j<i} (x[j] - mean()),
  /// size() + 1 entries. Exposed for fused kernels.
  const double* prefix() const { return prefix_.data(); }

  /// Second-order prefix sums: prefix2()[k] = sum_{j<k} prefix()[j],
  /// size() + 2 entries. They make the mean of any SMA(x, w) an O(1)
  /// expression, which is what lets ScoreWindow run a true central-
  /// moment pass without a separate mean sweep.
  const double* prefix2() const { return prefix2_.data(); }

  /// True iff every value of the series is identical. The naive
  /// evaluator produces exactly {0, 0} scores for such series (its
  /// running sum never changes), and the fused kernel matches that
  /// exactly instead of amplifying prefix rounding dust.
  bool is_constant() const { return is_constant_; }

 private:
  std::vector<double> x_;
  std::vector<double> prefix_;
  std::vector<double> prefix2_;
  double mean_ = 0.0;
  double roughness_ = 0.0;
  double kurtosis_ = 0.0;
  bool is_constant_ = false;

  bool acf_valid_ = false;
  size_t acf_max_lag_ = 0;
  double acf_threshold_ = 0.0;
  AcfInfo acf_;
};

/// Fused scoring kernel: roughness and kurtosis of SMA(x, w) in one
/// allocation-free pass over the context's prefix sums. Matches the
/// naive EvaluateWindow within ~1e-9 (exactly, for w == 1).
///
/// The pass runs through the canonical chunked reduction of
/// core/kernels.h, so its result is bitwise-identical for every
/// ExecPolicy — scalar, SIMD, one thread or many. The two-argument
/// form (sequential, auto SIMD) performs zero heap allocations.
CandidateScore ScoreWindow(const SeriesContext& ctx, size_t w);
CandidateScore ScoreWindow(const SeriesContext& ctx, size_t w,
                           const ExecPolicy& policy);

}  // namespace asap

#endif  // ASAP_CORE_SERIES_CONTEXT_H_
