// The public batch API: Smooth() — "given a window of time to
// visualize, select and apply an appropriate smoothing parameter to
// the target series" (paper §1).
//
// Composes pixel-aware preaggregation (§4.4) with a window search
// strategy (§4.1–4.3) and applies the chosen SMA. The strategy is
// configurable so the Fig. 8/9 comparison benches can run alternatives
// through the identical pipeline.

#ifndef ASAP_CORE_SMOOTH_H_
#define ASAP_CORE_SMOOTH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/search.h"
#include "ts/timeseries.h"

namespace asap {

/// Which candidate-enumeration strategy Smooth() uses.
enum class SearchStrategy {
  kAsap,        // ACF pruning + binary fallback (the paper's operator)
  kExhaustive,  // quality gold standard
  kGrid,        // exhaustive with stride `grid_step`
  kBinary,      // bisection on the kurtosis constraint
};

const char* SearchStrategyName(SearchStrategy strategy);

/// End-to-end smoothing configuration.
struct SmoothOptions {
  /// Target display width in pixels; also the preaggregation budget.
  /// 0 disables pixel-aware preaggregation ("users can still choose to
  /// disable pixel-aware preaggregation", §5.2.2).
  size_t resolution = 800;

  /// Search-space options (max window, ACF threshold, grid step).
  SearchOptions search;

  SearchStrategy strategy = SearchStrategy::kAsap;
};

/// Everything the operator learned while smoothing, for rendering and
/// for the benches.
struct SmoothingResult {
  /// The smoothed (and preaggregated) series to plot.
  std::vector<double> series;

  /// Chosen SMA window, in preaggregated points (1 = unsmoothed).
  size_t window = 1;

  /// Points per pixel bucket used by preaggregation (1 = none).
  size_t points_per_pixel = 1;

  /// Chosen window expressed in raw input points.
  size_t window_raw_points = 1;

  /// Metrics before (preaggregated) and after smoothing.
  double roughness_before = 0.0;
  double roughness_after = 0.0;
  double kurtosis_before = 0.0;
  double kurtosis_after = 0.0;

  SearchDiagnostics diag;

  /// Convenience: roughness_after / roughness_before (0 when the input
  /// was already perfectly smooth).
  double RoughnessRatio() const;
};

/// Smooths `values` for a `resolution`-pixel display. Fails with
/// InvalidArgument for inputs shorter than 4 points (no meaningful
/// roughness/kurtosis exists).
Result<SmoothingResult> Smooth(const std::vector<double>& values,
                               const SmoothOptions& options);

/// TimeSeries overload; the result series keeps the input's grid
/// rescaled by the preaggregation and window slide.
Result<SmoothingResult> Smooth(const TimeSeries& series,
                               const SmoothOptions& options);

/// Applies an already-chosen window to a raw series using the same
/// preaggregation pipeline (used by overlays and sensitivity benches).
Result<std::vector<double>> ApplyWindow(const std::vector<double>& values,
                                        size_t resolution, size_t window);

}  // namespace asap

#endif  // ASAP_CORE_SMOOTH_H_
