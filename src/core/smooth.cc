#include "core/smooth.h"

#include <cmath>

#include "common/macros.h"
#include "window/preaggregate.h"
#include "window/sma.h"

namespace asap {

const char* SearchStrategyName(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kAsap:
      return "ASAP";
    case SearchStrategy::kExhaustive:
      return "Exhaustive";
    case SearchStrategy::kGrid:
      return "Grid";
    case SearchStrategy::kBinary:
      return "Binary";
  }
  return "Unknown";
}

double SmoothingResult::RoughnessRatio() const {
  if (roughness_before <= 0.0) {
    return 0.0;
  }
  return roughness_after / roughness_before;
}

Result<SmoothingResult> Smooth(const std::vector<double>& values,
                               const SmoothOptions& options) {
  if (values.size() < 4) {
    return Status::InvalidArgument(
        "need at least 4 points to smooth, got " +
        std::to_string(values.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      return Status::InvalidArgument(
          "non-finite value at index " + std::to_string(i) +
          "; clean or impute the series before smoothing");
    }
  }

  const window::Preaggregated agg =
      window::Preaggregate(values, options.resolution);
  const std::vector<double>& x = agg.series;
  if (x.size() < 4) {
    return Status::InvalidArgument(
        "preaggregated series too short; lower the preaggregation "
        "(resolution) or provide more data");
  }

  // One evaluation context serves the whole search: prefix sums and the
  // series metrics are computed once, every candidate after that is an
  // allocation-free fused pass.
  SeriesContext ctx(x);
  SearchResult search;
  switch (options.strategy) {
    case SearchStrategy::kAsap:
      search = AsapSearch(&ctx, options.search);
      break;
    case SearchStrategy::kExhaustive:
      search = ExhaustiveSearch(&ctx, options.search);
      break;
    case SearchStrategy::kGrid:
      search = GridSearch(&ctx, options.search);
      break;
    case SearchStrategy::kBinary:
      search = BinarySearch(&ctx, options.search);
      break;
  }

  SmoothingResult result;
  result.window = search.window;
  result.points_per_pixel = agg.points_per_pixel;
  result.window_raw_points = search.window * agg.points_per_pixel;
  result.roughness_before = ctx.roughness();
  result.kurtosis_before = ctx.kurtosis();
  result.series = window::Sma(x, search.window);
  // After-metrics through the same fused evaluator the search used, so
  // the reported scores are exactly the ones the decision was made on.
  const CandidateScore after = ScoreWindow(ctx, search.window,
                                           options.search.exec);
  result.roughness_after = after.roughness;
  result.kurtosis_after = after.kurtosis;
  result.diag = search.diag;
  return result;
}

Result<SmoothingResult> Smooth(const TimeSeries& series,
                               const SmoothOptions& options) {
  return Smooth(series.values(), options);
}

Result<std::vector<double>> ApplyWindow(const std::vector<double>& values,
                                        size_t resolution, size_t window) {
  if (values.empty()) {
    return Status::InvalidArgument("empty input");
  }
  const window::Preaggregated agg = window::Preaggregate(values, resolution);
  if (window < 1 || window > agg.series.size()) {
    return Status::OutOfRange(
        "window " + std::to_string(window) + " out of range [1, " +
        std::to_string(agg.series.size()) + "]");
  }
  return window::Sma(agg.series, window);
}

}  // namespace asap
