// Runtime-dispatched SIMD kernel table for the analytics hot loops.
//
// Every kernel here exists in (at least) two implementations — a
// scalar reference and an AVX2/NEON path — selected at runtime via
// ActiveKernels(). The contract that makes that safe to do silently:
// all implementations of a kernel produce **bitwise-identical**
// results. There is no "fast but slightly different" mode.
//
// That is achievable because each kernel commits to one canonical
// floating-point reduction shape, chosen to be exactly what a 4-wide
// vector unit computes, and the scalar path *emulates* that shape:
//
//   * Reductions run 4 independent accumulator lanes; element i of a
//     range [begin, end) goes to lane (i - begin) % 4 over the largest
//     prefix that is a multiple of 4, and the remainder is applied
//     scalar after the lane merge.
//   * Lanes merge in the fixed order (l0 + l2) + (l1 + l3) — the sum
//     of a 256-bit register's low and high 128-bit halves followed by
//     a horizontal add, which is the natural AVX2 idiom.
//   * Max lanes merge with `(a > b) ? a : b`, the exact semantics of
//     the x86 maxpd / AArch64 fmax-style selects used by the vector
//     paths (NaN handling included).
//   * No FMA contraction anywhere: the vector paths use explicit
//     multiply-then-add, and the kernel translation units are built
//     with -ffp-contract=off so the scalar path cannot contract
//     either.
//
// Thread-level parallelism layers on top the same way: callers split a
// range into chunks whose layout is a pure function of the *element
// count* (ScoreChunks/ChunkBound below — never of the thread count),
// compute per-chunk partials with these kernels, and merge the
// partials sequentially in chunk order. The result is one fixed FP
// expression DAG per input, regardless of ISA or thread count.

#ifndef ASAP_CORE_KERNELS_H_
#define ASAP_CORE_KERNELS_H_

#include <cstddef>

#include "common/exec_policy.h"

namespace asap {
namespace kern {

/// Partial sums of the fused ScoreWindow moment pass over one chunk.
struct MomentPartials {
  double s2 = 0.0;   // sum (u - mean_u)^2
  double s4 = 0.0;   // sum ((u - mean_u)^2)^2
  double sd2 = 0.0;  // sum ((u - prev_u) - mean_d)^2
};

/// Partial sums of the history-diff pass over one chunk.
struct AbsDeltaPartials {
  double sum_abs = 0.0;
  double max_abs = 0.0;
};

/// Min/max of one gathered band column, plus whether any NaN appeared
/// (NaN columns take the sort-based fallback in BandsOf).
struct ColumnMinMax {
  double min_v = 0.0;
  double max_v = 0.0;
  bool has_nan = false;
};

/// The dispatch table. One instance per implementation; all entries of
/// all instances are bitwise-result-identical (see file comment).
struct KernelTable {
  /// Implementation name for diagnostics: "scalar", "avx2", "neon".
  const char* name;

  /// Fused central-moment partials of the smoothed values
  ///   u_i = (prefix[i + w] - prefix[i]) * inv_w
  /// for i in [begin, end), 1 <= begin <= end <= m, accumulating
  /// (u - mean_u)^2, its square, and ((u_i - u_{i-1}) - mean_d)^2,
  /// where u_{i-1} is recomputed from the prefix array (the identical
  /// FP expression the sequential loop's prev_u carried).
  MomentPartials (*score_segment)(const double* prefix, size_t w,
                                  double inv_w, double mean_u, double mean_d,
                                  size_t begin, size_t end);

  /// delta[j] = newer[j] - older[j] for j in [0, len); returns the
  /// sum and max of |delta| over the range.
  AbsDeltaPartials (*abs_delta)(const double* newer, const double* older,
                                size_t len, double* delta);

  /// 4-position transpose gather: for s in [0, count),
  /// ck[s] = bases[s][offset + k] for k = 0..3 (a row-of-series to
  /// column-of-positions transpose; pure data movement).
  void (*gather4)(const double* const* bases, size_t offset, size_t count,
                  double* c0, double* c1, double* c2, double* c3);

  /// Min/max over col[0..n) with NaN detection. Min lanes update with
  /// `(v < acc) ? v : acc` and max lanes with `(v > acc) ? v : acc`
  /// (NaN never replaces the accumulator); lanes start at +/-infinity.
  ColumnMinMax (*column_minmax)(const double* col, size_t n);

  /// Linear value-domain bucketing for the percentile-band selection:
  ///   t = (col[i] - min_v) * scale;  t = max(t, 0); t = min(t, 255);
  ///   bucket[i] = (unsigned char)(int)t;  ++hist256[bucket[i]];
  /// with max/min in the same select semantics as column_minmax.
  void (*bucketize)(const double* col, size_t n, double min_v, double scale,
                    unsigned char* bucket, unsigned int* hist256);

  /// In-place power pass over interleaved complex doubles:
  /// (re, im) -> (re * re + im * im, 0) for n_complex pairs.
  void (*complex_norm)(double* interleaved, size_t n_complex);
};

/// The scalar reference table (always available; the parity baseline).
const KernelTable& ScalarKernels();

/// The table to use under `mode`: the widest implementation compiled
/// in and supported by this CPU, unless mode forces scalar, the build
/// was configured with ASAP_DISABLE_SIMD, or the ASAP_DISABLE_SIMD
/// environment variable is set (checked once per process).
const KernelTable& ActiveKernels(SimdMode mode);

/// True iff a non-scalar table is compiled in and usable on this CPU.
bool SimdAvailable();

// ---- canonical chunk layout --------------------------------------------------

/// Upper bound on reduction chunks: small enough for stack-allocated
/// partials in allocation-free paths, large enough to feed any
/// realistic core count.
inline constexpr size_t kMaxChunks = 64;

/// Minimum elements per reduction chunk; below this, fan-out overhead
/// dominates the arithmetic.
inline constexpr size_t kMinChunkElems = 16384;

/// Canonical chunk count for a reduction over `total` elements: a pure
/// function of total (NEVER of the thread count), so the partial-sum
/// structure — and therefore the bitwise result — is execution-
/// independent.
inline size_t ChunksFor(size_t total) {
  if (total == 0) {
    return 0;
  }
  const size_t by_size = total / kMinChunkElems;
  if (by_size <= 1) {
    return 1;
  }
  return by_size < kMaxChunks ? by_size : kMaxChunks;
}

/// Element offset of chunk boundary c (0 <= c <= chunks) in an even
/// split of [0, total).
inline size_t ChunkBound(size_t total, size_t chunks, size_t c) {
  return total / chunks * c + total % chunks * c / chunks;
}

namespace internal {
/// Per-ISA table providers (one translation unit each, built with the
/// matching -m flags). Each returns nullptr when its implementation is
/// not compiled in or the running CPU lacks the feature.
const KernelTable* GetAvx2Kernels();
const KernelTable* GetNeonKernels();
}  // namespace internal

}  // namespace kern
}  // namespace asap

#endif  // ASAP_CORE_KERNELS_H_
