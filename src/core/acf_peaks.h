// Autocorrelation peak detection (paper §4.3.3, "Autocorrelation
// peaks"). Peaks — local maxima of the ACF — correspond to candidate
// periods; ASAP restricts its candidate windows to them.

#ifndef ASAP_CORE_ACF_PEAKS_H_
#define ASAP_CORE_ACF_PEAKS_H_

#include <cstddef>
#include <vector>

#include "common/exec_policy.h"

namespace asap {

/// ACF summary used by the searches.
struct AcfInfo {
  /// acf[k] for k = 0..max_lag (acf[0] == 1).
  std::vector<double> correlations;
  /// Lags of detected peaks, ascending. Empty for aperiodic series.
  std::vector<size_t> peaks;
  /// Largest correlation among the peaks (0 if none).
  double max_acf = 0.0;
};

/// Computes the ACF (via FFT) up to max_lag and detects peaks: interior
/// local maxima with correlation > threshold. The paper's public
/// implementations use threshold = 0.2; below it, periodicity is too
/// weak for the Eq. 5/6 pruning rules to be trustworthy and ASAP falls
/// back to binary search.
/// The policy parallelizes/vectorizes the FFT passes; the computed
/// values are bitwise-identical under every policy.
AcfInfo ComputeAcfInfo(const std::vector<double>& series, size_t max_lag,
                       double peak_threshold = 0.2,
                       const ExecPolicy& policy = {});

/// Peak detection over an existing ACF vector (lags 1..size-1).
std::vector<size_t> FindAcfPeaks(const std::vector<double>& acf,
                                 double peak_threshold = 0.2);

}  // namespace asap

#endif  // ASAP_CORE_ACF_PEAKS_H_
