#include "core/explorer.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "window/preaggregate.h"
#include "window/sma.h"

namespace asap {

Explorer::Explorer(TimeSeries series, const ExplorerOptions& options)
    : series_(std::move(series)), options_(options) {
  // Level 0 is the raw series; level k halves level k-1 (dropping a
  // trailing odd sample). Stop once a level fits within the display.
  pyramid_.push_back(series_.values());
  while (pyramid_.back().size() > 2 * options_.resolution) {
    const std::vector<double>& prev = pyramid_.back();
    std::vector<double> next;
    next.reserve(prev.size() / 2);
    for (size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(0.5 * (prev[i] + prev[i + 1]));
    }
    pyramid_.push_back(std::move(next));
  }
}

Result<Explorer> Explorer::Create(TimeSeries series,
                                  const ExplorerOptions& options) {
  if (series.size() < 8) {
    return Status::InvalidArgument("series too short to explore");
  }
  if (options.resolution < 16) {
    return Status::InvalidArgument("resolution must be >= 16 pixels");
  }
  return Explorer(std::move(series), options);
}

Result<ViewFrame> Explorer::Render(size_t begin, size_t end) {
  if (begin >= end || end > series_.size()) {
    return Status::OutOfRange(
        "viewport [" + std::to_string(begin) + ", " + std::to_string(end) +
        ") out of range for a series of " + std::to_string(series_.size()) +
        " points");
  }
  const size_t span = end - begin;
  if (span < 8) {
    return Status::InvalidArgument("viewport must cover at least 8 points");
  }

  // Choose the coarsest pyramid level that still oversamples the
  // display: 2^level <= span / resolution.
  size_t level = 0;
  while (level + 1 < pyramid_.size() &&
         (span >> (level + 1)) >= options_.resolution) {
    ++level;
  }
  const size_t scale = static_cast<size_t>(1) << level;
  const size_t level_begin = begin / scale;
  const size_t level_end = std::max(level_begin + 1, end / scale);
  const std::vector<double>& data = pyramid_[level];
  const size_t clamped_end = std::min(level_end, data.size());
  std::vector<double> view(data.begin() + level_begin,
                           data.begin() + clamped_end);

  // Residual preaggregation down to the display resolution (the level
  // only gets us within a factor of 2).
  const window::Preaggregated agg =
      window::Preaggregate(view, options_.resolution);
  if (agg.series.size() < 4) {
    return Status::InvalidArgument("viewport too small at this resolution");
  }

  // Warm-start per level: zooming/scrolling at the same scale usually
  // keeps the same period structure. The context serves the search,
  // the before-metrics (cached), and the after-metrics (one fused
  // pass) without re-sweeping the viewport.
  AsapState& state = level_state_[level];
  ctx_.Reset(agg.series);
  const SearchResult search = AsapSearch(&ctx_, options_.search, &state);

  ViewFrame frame;
  frame.level = level;
  frame.points_per_bucket = scale * agg.points_per_pixel;
  frame.begin = begin;
  frame.end = end;
  frame.window = search.window;
  frame.roughness_before = ctx_.roughness();
  frame.kurtosis_before = ctx_.kurtosis();
  frame.series = window::Sma(agg.series, search.window);
  const CandidateScore after = ScoreWindow(ctx_, search.window);
  frame.roughness_after = after.roughness;
  frame.kurtosis_after = after.kurtosis;
  frame.candidates_evaluated = search.diag.candidates_evaluated;

  has_last_view_ = true;
  last_begin_ = begin;
  last_end_ = end;
  return frame;
}

Result<ViewFrame> Explorer::RenderAll() { return Render(0, series_.size()); }

Result<ViewFrame> Explorer::Zoom(double factor) {
  if (!has_last_view_) {
    return Status::InvalidArgument("Zoom requires a prior Render");
  }
  if (!(factor > 0.0) || !std::isfinite(factor)) {
    return Status::InvalidArgument("zoom factor must be positive and finite");
  }
  const double center = 0.5 * (static_cast<double>(last_begin_) +
                               static_cast<double>(last_end_));
  const double half_span =
      0.5 * static_cast<double>(last_end_ - last_begin_) * factor;
  const double lo = std::max(0.0, center - half_span);
  const double hi = std::min(static_cast<double>(series_.size()),
                             center + half_span);
  size_t begin = static_cast<size_t>(std::llround(lo));
  size_t end = static_cast<size_t>(std::llround(hi));
  if (end - begin < 8) {
    // Fully zoomed in: clamp to the minimum viewport around the center.
    const size_t c = static_cast<size_t>(std::llround(center));
    begin = c >= 4 ? c - 4 : 0;
    end = std::min(series_.size(), begin + 8);
    begin = end >= 8 ? end - 8 : 0;
  }
  return Render(begin, end);
}

Result<ViewFrame> Explorer::Scroll(long delta) {
  if (!has_last_view_) {
    return Status::InvalidArgument("Scroll requires a prior Render");
  }
  const long span = static_cast<long>(last_end_ - last_begin_);
  long begin = static_cast<long>(last_begin_) + delta;
  begin = std::max(begin, 0L);
  begin = std::min(begin, static_cast<long>(series_.size()) - span);
  begin = std::max(begin, 0L);
  return Render(static_cast<size_t>(begin),
                static_cast<size_t>(begin + span));
}

}  // namespace asap
