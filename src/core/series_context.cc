#include "core/series_context.h"

#include <cmath>

#include "common/macros.h"
#include "common/task_pool.h"
#include "core/kernels.h"
#include "core/metrics.h"
#include "core/search.h"
#include "stats/descriptive.h"
#include "stats/welford.h"
#include "window/sma.h"

namespace asap {

SeriesContext::SeriesContext(const std::vector<double>& x) { Reset(x); }

void SeriesContext::Reset(const std::vector<double>& x) {
  x_ = x;  // operator= reuses capacity when it suffices
  mean_ = stats::Mean(x_);
  roughness_ = Roughness(x_);
  kurtosis_ = Kurtosis(x_);
  acf_valid_ = false;

  const size_t n = x_.size();
  is_constant_ = true;
  for (size_t i = 1; i < n; ++i) {
    if (x_[i] != x_[0]) {
      is_constant_ = false;
      break;
    }
  }

  prefix_.resize(n + 1);
  prefix2_.resize(n + 2);
  // Centered, compensated prefix sums: centering keeps the stored
  // magnitudes ~ sqrt(N) * sigma (a random walk) instead of N * mean,
  // and the running compensation keeps each stored prefix within
  // O(eps) of the exact centered sum, so the O(1) SMA reconstruction
  // stays within ~1e-9 of the naive running sum even for
  // multi-million-point series. The second-order prefix gets the same
  // treatment.
  double sum = 0.0;
  double comp = 0.0;
  double sum2 = 0.0;
  double comp2 = 0.0;
  prefix_[0] = 0.0;
  prefix2_[0] = 0.0;
  prefix2_[1] = 0.0;  // prefix_[0] contributes nothing
  for (size_t i = 0; i < n; ++i) {
    const double y = (x_[i] - mean_) - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
    prefix_[i + 1] = sum;

    const double y2 = prefix_[i + 1] - comp2;
    const double t2 = sum2 + y2;
    comp2 = (t2 - sum2) - y2;
    sum2 = t2;
    prefix2_[i + 2] = sum2;
  }
}

double SeriesContext::SmaAt(size_t w, size_t i) const {
  ASAP_DCHECK(w >= 1 && i + w <= x_.size());
  return mean_ + (prefix_[i + w] - prefix_[i]) / static_cast<double>(w);
}

const AcfInfo& SeriesContext::EnsureAcf(size_t max_lag, double peak_threshold,
                                        const ExecPolicy& policy) {
  // Exact-parameter caching only: reusing a *broader* cached ACF for a
  // smaller max_lag would change max_acf (and the Eq. 6 pruning) the
  // moment a context is shared across searches with different window
  // ranges, making results depend on call history. The policy is not
  // part of the key: it never changes the computed values.
  if (!acf_valid_ || acf_max_lag_ != max_lag ||
      acf_threshold_ != peak_threshold) {
    acf_ = ComputeAcfInfo(x_, max_lag, peak_threshold, policy);
    acf_valid_ = true;
    acf_max_lag_ = max_lag;
    acf_threshold_ = peak_threshold;
  }
  return acf_;
}

namespace {

// True iff x[i + w] == x[i] for every valid i, i.e. the series is
// exactly w-periodic (a constant series is the period-1 case). This is
// precisely the condition under which window::Sma's running sum never
// changes between re-summations, leaving the naive evaluator's
// smoothed series (near-)exactly constant — the one regime where the
// fused prefix kernel would amplify representation rounding into a
// garbage kurtosis. One comparison for typical data.
bool ExactlyPeriodic(const std::vector<double>& x, size_t w) {
  for (size_t i = 0; i + w < x.size(); ++i) {
    if (x[i + w] != x[i]) {
      return false;
    }
  }
  return true;
}

// Replays window::Sma's exact value sequence (running sum, periodic
// re-summation and all) without materializing it.
template <typename Emit>
void ForEachNaiveSmaValue(const std::vector<double>& x, size_t w,
                          Emit&& emit) {
  const size_t n = x.size();
  const double inv_w = 1.0 / static_cast<double>(w);
  double sum = 0.0;
  for (size_t i = 0; i < w; ++i) {
    sum += x[i];
  }
  emit(sum * inv_w);
  size_t since_resum = 0;
  for (size_t i = 1; i + w <= n; ++i) {
    sum += x[i + w - 1] - x[i - 1];
    if (++since_resum >= window::kRecomputeInterval) {
      sum = 0.0;
      for (size_t j = i; j < i + w; ++j) {
        sum += x[j];
      }
      since_resum = 0;
    }
    emit(sum * inv_w);
  }
}

// Bit-exact, allocation-free replay of the naive evaluator
// (window::Sma + Roughness + Kurtosis): the same floating-point
// operations in the same order, streamed instead of materialized.
// Used for exactly periodic input, where "parity within rounding"
// is not good enough — the true smoothed variance is zero, so any
// dust-level deviation between evaluators becomes an O(1) kurtosis
// difference and can flip the feasibility test.
CandidateScore ReplayNaiveScore(const std::vector<double>& x, size_t w) {
  const size_t m = x.size() - w + 1;
  stats::ScoreAccumulator diff_acc;  // Roughness()'s accumulation
  double ysum = 0.0;                 // stats::Mean()'s compensated sum
  double ycomp = 0.0;
  ForEachNaiveSmaValue(x, w, [&](double y) {
    diff_acc.Add(y);
    const double t1 = y - ycomp;
    const double t = ysum + t1;
    ycomp = (t - ysum) - t1;
    ysum = t;
  });

  CandidateScore score;
  score.roughness = m >= 3 ? diff_acc.roughness() : 0.0;
  if (m >= 2) {
    // stats::ComputeMoments' central accumulation around the Kahan mean.
    const double mean = ysum / static_cast<double>(m);
    double s2 = 0.0;
    double s4 = 0.0;
    ForEachNaiveSmaValue(x, w, [&](double y) {
      const double d = y - mean;
      const double d2 = d * d;
      s2 += d2;
      s4 += d2 * d2;
    });
    const double variance = s2 / static_cast<double>(m);
    if (variance > 0.0) {
      score.kurtosis =
          (s4 / static_cast<double>(m)) / (variance * variance);
    }
  }
  return score;
}

}  // namespace

CandidateScore ScoreWindow(const SeriesContext& ctx, size_t w) {
  return ScoreWindow(ctx, w, ExecPolicy{});
}

CandidateScore ScoreWindow(const SeriesContext& ctx, size_t w,
                           const ExecPolicy& policy) {
  ASAP_CHECK_GE(w, 1u);
  ASAP_CHECK_LE(w, ctx.size());
  if (w == 1) {
    // The cached series metrics *are* the w == 1 score (SMA(x, 1) == x),
    // and reusing them makes the identity candidate exact.
    return CandidateScore{ctx.roughness(), ctx.kurtosis()};
  }
  if (ctx.is_constant() || ExactlyPeriodic(ctx.x(), w)) {
    return ReplayNaiveScore(ctx.x(), w);
  }
  const size_t n = ctx.size();
  const size_t m = n - w + 1;  // smoothed length
  const double* prefix = ctx.prefix();
  const double* prefix2 = ctx.prefix2();
  const double inv_w = 1.0 / static_cast<double>(w);
  const double inv_m = 1.0 / static_cast<double>(m);

  // Centered smoothed values u_i = SMA(x, w)[i] - mean(x) are one
  // subtract + multiply away from the prefix array. Their mean is an
  // O(1) second-order-prefix expression
  //   mean(u) = (sum_{j=w}^{n} P[j] - sum_{j=0}^{n-w} P[j]) / (w * m)
  // and the first-difference mean telescopes to
  //   mean(d) = (u_{m-1} - u_0) / (m - 1),
  // so a single pass can accumulate *central* moments directly —
  // Welford's running-mean rescaling (one divide per point) is
  // unnecessary when the mean is known up front, and dropping it is
  // what makes this kernel several times faster than the naive
  // multi-pass evaluation it replaces.
  const double mean_u =
      (prefix2[n + 1] - prefix2[w] - prefix2[m]) * inv_w * inv_m;
  const double u0 = (prefix[w] - prefix[0]) * inv_w;
  const double u_last = (prefix[n] - prefix[m - 1]) * inv_w;
  const double mean_d =
      m >= 2 ? (u_last - u0) / static_cast<double>(m - 1) : 0.0;

  double s2 = 0.0;   // sum (u - mean_u)^2
  double s4 = 0.0;   // sum (u - mean_u)^4
  double sd2 = 0.0;  // sum (diff - mean_d)^2
  {
    const double dy = u0 - mean_u;
    const double dy2 = dy * dy;
    s2 = dy2;
    s4 = dy2 * dy2;
  }
  // Elements i in [1, m) run through the canonical chunked reduction
  // (core/kernels.h): the chunk layout depends only on the element
  // count and partials merge in chunk order, so every ExecPolicy —
  // scalar or SIMD, one thread or many — produces bitwise-identical
  // moments. The loop is data-parallel because u_{i-1} is recomputed
  // from the prefix array with the exact FP expression the sequential
  // loop's carried prev_u held.
  const size_t total = m - 1;
  if (total > 0) {
    const kern::KernelTable& kt = kern::ActiveKernels(policy.simd);
    const size_t chunks = kern::ChunksFor(total);
    kern::MomentPartials parts[kern::kMaxChunks];
    ParallelChunks(policy, chunks, [&](size_t c) {
      parts[c] = kt.score_segment(
          prefix, w, inv_w, mean_u, mean_d,
          1 + kern::ChunkBound(total, chunks, c),
          1 + kern::ChunkBound(total, chunks, c + 1));
    });
    for (size_t c = 0; c < chunks; ++c) {
      s2 += parts[c].s2;
      s4 += parts[c].s4;
      sd2 += parts[c].sd2;
    }
  }

  // Degenerate-input conventions match the naive metrics exactly:
  // roughness is 0 for fewer than 3 smoothed points, kurtosis is 0 for
  // fewer than 2 points or zero variance.
  CandidateScore score;
  score.roughness =
      m >= 3 ? std::sqrt(sd2 / static_cast<double>(m - 1)) : 0.0;
  const double variance = s2 * inv_m;
  score.kurtosis =
      (m >= 2 && variance > 0.0) ? (s4 * inv_m) / (variance * variance) : 0.0;
  return score;
}

}  // namespace asap
