#include "core/search.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/task_pool.h"
#include "core/kernels.h"
#include "core/metrics.h"
#include "window/sma.h"

namespace asap {

size_t SearchOptions::ResolveMaxWindow(size_t n) const {
  size_t mw = max_window;
  if (mw == 0) {
    const size_t divisor = max_window_divisor == 0 ? 10 : max_window_divisor;
    mw = n / divisor;
  }
  mw = std::min(mw, n);
  return std::max<size_t>(mw, 1);
}

CandidateScore EvaluateWindow(const std::vector<double>& x, size_t w) {
  ASAP_CHECK_GE(w, 1u);
  ASAP_CHECK_LE(w, x.size());
  const std::vector<double> y = window::Sma(x, w);
  return CandidateScore{Roughness(y), Kurtosis(y)};
}

namespace {

// Scores one candidate through the configured evaluator and keeps the
// diagnostics honest about which kernel ran.
CandidateScore Score(const SeriesContext& ctx, size_t w,
                     const SearchOptions& options, SearchDiagnostics* diag) {
  diag->candidates_evaluated += 1;
  if (options.use_naive_evaluator) {
    return EvaluateWindow(ctx.x(), w);
  }
  diag->allocation_free_evals += 1;
  return ScoreWindow(ctx, w, options.exec);
}

// Shared feasibility + bookkeeping: updates `result` if candidate w is
// feasible (kurtosis preserved) and smoother than the incumbent.
void ConsiderCandidate(const SeriesContext& ctx, size_t w,
                       const SearchOptions& options, SearchResult* result) {
  const CandidateScore score = Score(ctx, w, options, &result->diag);
  if (score.kurtosis >= ctx.kurtosis() &&
      score.roughness < result->roughness) {
    result->window = w;
    result->roughness = score.roughness;
    result->kurtosis = score.kurtosis;
  }
}

// Initializes the result with the unsmoothed series (w = 1), which is
// always feasible: kurtosis is trivially preserved. The context caches
// both w = 1 metrics, so this is free.
SearchResult InitWithIdentity(const SeriesContext& ctx) {
  SearchResult result;
  result.window = 1;
  result.roughness = ctx.roughness();
  result.kurtosis = ctx.kurtosis();
  return result;
}

// Bisection sweep over [head, tail]: assumes (per §4.2) that kurtosis
// of the smoothed series decreases in w, so the largest feasible
// window sits at the feasibility boundary. Updates `result` with any
// feasible, smoother candidate it visits.
void BinarySearchRange(const SeriesContext& ctx, size_t head, size_t tail,
                       const SearchOptions& options, SearchResult* result) {
  while (head <= tail) {
    const size_t w = head + (tail - head) / 2;
    const CandidateScore score = Score(ctx, w, options, &result->diag);
    if (score.kurtosis >= ctx.kurtosis()) {
      if (score.roughness < result->roughness) {
        result->window = w;
        result->roughness = score.roughness;
        result->kurtosis = score.kurtosis;
      }
      head = w + 1;  // feasible: try larger (smoother) windows
    } else {
      if (w <= 1) {
        break;  // cannot shrink below the identity window
      }
      tail = w - 1;  // infeasible: shrink
    }
  }
}

// Task-split candidate sweep over windows {first + i * step}, i in
// [0, count): candidates are scored into per-candidate slots across
// threads, then the incumbent walk replays sequentially in candidate
// order. Because ScoreWindow is bitwise-deterministic under every
// policy, the walk sees the exact scores the sequential sweep would
// have, so the chosen window, its score, and the diagnostics are all
// identical at any thread count.
void SweepCandidates(SeriesContext* ctx, size_t first, size_t step,
                     size_t count, const SearchOptions& options,
                     SearchResult* result) {
  const size_t threads = options.exec.ResolveThreads();
  if (threads <= 1 || count < 2) {
    for (size_t i = 0; i < count; ++i) {
      ConsiderCandidate(*ctx, first + i * step, options, result);
    }
    return;
  }
  std::vector<CandidateScore> scores(count);
  // Parallelism is across candidates here; the inner kernel runs
  // sequentially (its result does not depend on the choice).
  ExecPolicy inner = options.exec;
  inner.threads = 1;
  const size_t chunks =
      std::min(count, std::min<size_t>(threads * 4, kern::kMaxChunks));
  ParallelChunks(options.exec, chunks, [&](size_t c) {
    const size_t i0 = kern::ChunkBound(count, chunks, c);
    const size_t i1 = kern::ChunkBound(count, chunks, c + 1);
    for (size_t i = i0; i < i1; ++i) {
      const size_t w = first + i * step;
      scores[i] = options.use_naive_evaluator ? EvaluateWindow(ctx->x(), w)
                                              : ScoreWindow(*ctx, w, inner);
    }
  });
  for (size_t i = 0; i < count; ++i) {
    result->diag.candidates_evaluated += 1;
    if (!options.use_naive_evaluator) {
      result->diag.allocation_free_evals += 1;
    }
    const CandidateScore& score = scores[i];
    if (score.kurtosis >= ctx->kurtosis() &&
        score.roughness < result->roughness) {
      result->window = first + i * step;
      result->roughness = score.roughness;
      result->kurtosis = score.kurtosis;
    }
  }
}

}  // namespace

SearchResult ExhaustiveSearch(SeriesContext* ctx,
                              const SearchOptions& options) {
  ASAP_CHECK_GE(ctx->size(), 2u);
  const size_t max_window = options.ResolveMaxWindow(ctx->size());
  SearchResult result = InitWithIdentity(*ctx);
  if (max_window >= 2) {
    SweepCandidates(ctx, 2, 1, max_window - 1, options, &result);
  }
  return result;
}

SearchResult ExhaustiveSearch(const std::vector<double>& x,
                              const SearchOptions& options) {
  SeriesContext ctx(x);
  return ExhaustiveSearch(&ctx, options);
}

SearchResult GridSearch(SeriesContext* ctx, const SearchOptions& options) {
  ASAP_CHECK_GE(ctx->size(), 2u);
  ASAP_CHECK_GE(options.grid_step, 1u);
  const size_t max_window = options.ResolveMaxWindow(ctx->size());
  SearchResult result = InitWithIdentity(*ctx);
  const size_t first = 1 + options.grid_step;
  if (first <= max_window) {
    const size_t count = (max_window - first) / options.grid_step + 1;
    SweepCandidates(ctx, first, options.grid_step, count, options, &result);
  }
  return result;
}

SearchResult GridSearch(const std::vector<double>& x,
                        const SearchOptions& options) {
  SeriesContext ctx(x);
  return GridSearch(&ctx, options);
}

SearchResult BinarySearch(SeriesContext* ctx, const SearchOptions& options) {
  ASAP_CHECK_GE(ctx->size(), 2u);
  const size_t max_window = options.ResolveMaxWindow(ctx->size());
  SearchResult result = InitWithIdentity(*ctx);
  if (max_window >= 2) {
    BinarySearchRange(*ctx, 2, max_window, options, &result);
  }
  return result;
}

SearchResult BinarySearch(const std::vector<double>& x,
                          const SearchOptions& options) {
  SeriesContext ctx(x);
  return BinarySearch(&ctx, options);
}

SearchResult AsapSearchWithAcf(SeriesContext* ctx, const AcfInfo& acf,
                               const SearchOptions& options,
                               AsapState* seed) {
  ASAP_CHECK_GE(ctx->size(), 2u);
  const double kurtosis_x = ctx->kurtosis();
  const size_t max_window = options.ResolveMaxWindow(ctx->size());

  AsapState local;
  AsapState* state = seed != nullptr ? seed : &local;

  SearchResult result = InitWithIdentity(*ctx);
  result.diag.acf_peaks = acf.peaks.size();
  // A warm-started state may carry a smoother incumbent from the
  // previous refresh; adopt it (CheckLastWindow already validated
  // feasibility on the current data).
  if (state->has_feasible && state->window >= 1 &&
      state->window <= max_window && state->roughness < result.roughness) {
    result.window = state->window;
    result.roughness = state->roughness;
  }

  const std::vector<double>& corr = acf.correlations;
  const auto acf_at = [&corr](size_t lag) {
    return lag < corr.size() ? corr[lag] : 0.0;
  };

  // --- Algorithm 1: SearchPeriodic, large to small over ACF peaks. ---
  for (size_t idx = acf.peaks.size(); idx-- > 0;) {
    const size_t w = acf.peaks[idx];
    if (w > max_window) {
      continue;  // outside the admissible range
    }
    if (!options.disable_lower_bound_pruning &&
        static_cast<double>(w) < state->lower_bound) {
      // Everything below the Eq. 6 bound is dominated; peaks are sorted
      // so all remaining candidates are pruned too.
      result.diag.pruned_lower_bound += idx + 1;
      break;
    }
    if (!options.disable_roughness_pruning &&
        EstimatedRougher(w, acf_at(w), result.window,
                         acf_at(result.window))) {
      result.diag.pruned_roughness += 1;
      continue;
    }
    const CandidateScore score = Score(*ctx, w, options, &result.diag);
    if (score.kurtosis >= kurtosis_x) {
      if (score.roughness < result.roughness) {
        result.window = w;
        result.roughness = score.roughness;
        result.kurtosis = score.kurtosis;
      }
      state->has_feasible = true;
      state->lower_bound = std::max(
          state->lower_bound, WindowLowerBound(w, acf_at(w), acf.max_acf));
    }
  }

  // --- Algorithm 2: binary-search the remaining range. The paper's
  // pseudocode for the range endpoints is internally inconsistent (see
  // DESIGN.md §6); following the authors' public implementation we
  // bisect [lower_bound, max_window]. ---
  const size_t head = std::max<size_t>(
      2, static_cast<size_t>(std::lround(std::ceil(state->lower_bound))));
  if (head <= max_window) {
    BinarySearchRange(*ctx, head, max_window, options, &result);
  }

  state->window = result.window;
  state->roughness = result.roughness;
  state->has_feasible = true;  // w = 1 is always feasible
  return result;
}

SearchResult AsapSearchWithAcf(const std::vector<double>& x,
                               const AcfInfo& acf,
                               const SearchOptions& options,
                               AsapState* seed) {
  SeriesContext ctx(x);
  return AsapSearchWithAcf(&ctx, acf, options, seed);
}

SearchResult AsapSearch(SeriesContext* ctx, const SearchOptions& options,
                        AsapState* seed) {
  ASAP_CHECK_GE(ctx->size(), 2u);
  const size_t max_window = options.ResolveMaxWindow(ctx->size());
  // One extra lag so a period that lands exactly on max_window is still
  // detectable as a local maximum.
  const AcfInfo& acf = ctx->EnsureAcf(/*max_lag=*/max_window + 1,
                                      options.acf_threshold, options.exec);
  return AsapSearchWithAcf(ctx, acf, options, seed);
}

SearchResult AsapSearch(const std::vector<double>& x,
                        const SearchOptions& options, AsapState* seed) {
  SeriesContext ctx(x);
  return AsapSearch(&ctx, options, seed);
}

}  // namespace asap
