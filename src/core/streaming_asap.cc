#include "core/streaming_asap.h"

#include <algorithm>
#include <atomic>

#include "common/macros.h"
#include "core/metrics.h"
#include "window/preaggregate.h"
#include "window/sma.h"

namespace asap {

StreamingAsap::StreamingAsap(const StreamingOptions& options)
    : options_(options),
      pane_size_(options.enable_preaggregation
                     ? window::PointToPixelRatio(options.visible_points,
                                                 options.resolution)
                     : 1),
      refresh_interval_points_(options.refresh_every_points != 0
                                   ? options.refresh_every_points
                                   : pane_size_),
      panes_(pane_size_,
             /*max_panes=*/std::max<size_t>(options.visible_points /
                                                std::max<size_t>(pane_size_, 1),
                                            4)),
      published_(std::make_shared<const Frame>()) {}

Result<StreamingAsap> StreamingAsap::Create(const StreamingOptions& options) {
  if (options.visible_points < 8) {
    return Status::InvalidArgument(
        "visible_points must be >= 8 (got " +
        std::to_string(options.visible_points) + ")");
  }
  if (options.snapshot_ring_frames < 1) {
    return Status::InvalidArgument("snapshot_ring_frames must be >= 1");
  }
  if (options.pane_width_ticks < 0) {
    return Status::InvalidArgument("pane_width_ticks must be >= 0");
  }
  return StreamingAsap(options);
}

bool StreamingAsap::Push(double x) {
  ++points_consumed_;
  ++points_since_refresh_;
  panes_.Push(x);
  if (points_since_refresh_ >= refresh_interval_points_ &&
      panes_.size() >= 4) {
    Refresh();
    points_since_refresh_ = 0;
    return true;
  }
  return false;
}

void StreamingAsap::Prefill(const std::vector<double>& xs) {
  panes_.PushBulk(xs.data(), xs.size());
  points_consumed_ += xs.size();
  points_since_refresh_ = 0;
}

size_t StreamingAsap::PushBatch(const double* xs, size_t n) {
  size_t refreshes = 0;
  size_t i = 0;
  while (i < n) {
    // Distance to the first point after which the refresh condition
    // (points_since_refresh_ >= interval AND >= 4 complete panes) can
    // hold. Both conditions are monotone within a chunk, so the
    // earliest firing point is the max of the two distances — every
    // point before it is safe to bulk-append with no boundary check.
    const size_t until_interval =
        points_since_refresh_ >= refresh_interval_points_
            ? 1
            : refresh_interval_points_ - points_since_refresh_;
    const size_t until_panes = panes_.PointsUntilPaneCount(4);
    const size_t stop =
        std::max<size_t>(std::max(until_interval, until_panes), 1);
    const size_t chunk = std::min(stop, n - i);
    panes_.PushBulk(xs + i, chunk);
    points_consumed_ += chunk;
    points_since_refresh_ += chunk;
    i += chunk;
    if (points_since_refresh_ >= refresh_interval_points_ &&
        panes_.size() >= 4) {
      Refresh();
      points_since_refresh_ = 0;
      ++refreshes;
    }
  }
  return refreshes;
}

size_t StreamingAsap::PushTimed(const double* xs, const int64_t* ts,
                                size_t n) {
  ASAP_CHECK_GT(options_.pane_width_ticks, 0);
  size_t refreshes = 0;
  for (size_t i = 0; i < n; ++i) {
    panes_.PushTimed(xs[i],
                     window::PaneIndexForTs(ts[i], options_.pane_epoch,
                                            options_.pane_width_ticks));
    ++points_consumed_;
    ++points_since_refresh_;
    if (points_since_refresh_ >= refresh_interval_points_ &&
        panes_.size() >= 4) {
      Refresh();
      points_since_refresh_ = 0;
      ++refreshes;
    }
  }
  return refreshes;
}

void StreamingAsap::RestorePanes(const double* means, size_t n,
                                 bool cadenced) {
  if (!cadenced) {
    panes_.RestoreCompleted(means, n);
    points_consumed_ += n * pane_size_;
    points_since_refresh_ = 0;
    if (panes_.size() >= 4) {
      Refresh();
    }
    return;
  }
  // Replay the live refresh cadence one pane at a time: each restored
  // pane advances the point clock by pane_size, firing Refresh at
  // exactly the boundaries live ingestion would have (boundaries are
  // pane-aligned whenever refresh_interval_points is a multiple of
  // pane_size — in particular for the refresh-per-pane default).
  for (size_t i = 0; i < n; ++i) {
    panes_.RestoreCompleted(means + i, 1);
    points_consumed_ += pane_size_;
    points_since_refresh_ += pane_size_;
    if (points_since_refresh_ >= refresh_interval_points_ &&
        panes_.size() >= 4) {
      Refresh();
      points_since_refresh_ = 0;
    }
  }
}

std::shared_ptr<const StreamingAsap::Frame> StreamingAsap::frame_snapshot()
    const {
  if (options_.snapshot_ring_frames > 1) {
    // The ring is the single publication point when K > 1, so
    // frame_snapshot() and FrameHistory().back() can never disagree.
    const std::shared_ptr<const FrameRing> ring = std::atomic_load_explicit(
        &published_ring_, std::memory_order_acquire);
    if (ring != nullptr) {
      return ring->back();
    }
    // No refresh yet: fall through to the initial empty frame.
  }
  return std::atomic_load_explicit(&published_, std::memory_order_acquire);
}

std::vector<std::shared_ptr<const StreamingAsap::Frame>>
StreamingAsap::FrameHistory() const {
  if (options_.snapshot_ring_frames <= 1) {
    std::shared_ptr<const Frame> latest = frame_snapshot();
    if (latest->refreshes == 0) {
      return {};
    }
    return {std::move(latest)};
  }
  const std::shared_ptr<const FrameRing> ring =
      std::atomic_load_explicit(&published_ring_, std::memory_order_acquire);
  return ring == nullptr ? FrameRing{} : *ring;
}

void StreamingAsap::Refresh() {
  const std::vector<double> x = panes_.PaneMeans();
  if (x.size() < 4) {
    return;
  }
  // Rebuild the evaluation context from the pane buffer: prefix sums
  // and series metrics are recomputed once per refresh, then every
  // candidate evaluation below is an allocation-free fused pass.
  ctx_.Reset(x);
  const size_t max_window = options_.search.ResolveMaxWindow(x.size());

  // UpdateAcf: the visible window changed, recompute its ACF (one
  // extra lag so a period at exactly max_window remains detectable).
  const AcfInfo& acf = ctx_.EnsureAcf(
      max_window + 1, options_.search.acf_threshold, options_.search.exec);
  const double kurtosis_x = ctx_.kurtosis();

  // CheckLastWindow: seed with the previous solution if it is still
  // feasible on the refreshed data; otherwise search from scratch.
  state_ = AsapState{};
  bool seeded = false;
  if (has_previous_window_ && previous_window_ >= 1 &&
      previous_window_ <= x.size()) {
    CandidateScore score;
    if (options_.search.use_naive_evaluator) {
      score = EvaluateWindow(x, previous_window_);
    } else {
      score = ScoreWindow(ctx_, previous_window_, options_.search.exec);
      frame_.allocation_free_evals += 1;
    }
    frame_.candidates_evaluated += 1;
    if (score.kurtosis >= kurtosis_x) {
      state_.window = previous_window_;
      state_.roughness = score.roughness;
      state_.has_feasible = true;
      const double corr = previous_window_ < acf.correlations.size()
                              ? acf.correlations[previous_window_]
                              : 0.0;
      state_.lower_bound =
          std::max(1.0, WindowLowerBound(previous_window_, corr, acf.max_acf));
      seeded = true;
    }
  }

  SearchResult result;
  switch (options_.strategy) {
    case SearchStrategy::kAsap:
      result = AsapSearchWithAcf(&ctx_, acf, options_.search, &state_);
      break;
    case SearchStrategy::kExhaustive:
      result = ExhaustiveSearch(&ctx_, options_.search);
      break;
    case SearchStrategy::kGrid:
      result = GridSearch(&ctx_, options_.search);
      break;
    case SearchStrategy::kBinary:
      result = BinarySearch(&ctx_, options_.search);
      break;
  }

  frame_.series = window::Sma(x, result.window);
  frame_.window = result.window;
  frame_.refreshes += 1;
  frame_.candidates_evaluated += result.diag.candidates_evaluated;
  frame_.allocation_free_evals += result.diag.allocation_free_evals;
  if (seeded) {
    frame_.seeded_searches += 1;
  } else {
    frame_.cold_searches += 1;
  }

  has_previous_window_ = true;
  previous_window_ = result.window;

  // Publish the refreshed frame for lock-free snapshot readers (the
  // sharded engine's dashboards read frames mid-run through this).
  // Exactly one publication point per mode: published_ when K == 1,
  // the ring when K > 1 (frame_snapshot() serves ring->back() then),
  // so snapshot and history can never be observed out of step.
  std::shared_ptr<const Frame> fresh = std::make_shared<Frame>(frame_);
  const size_t ring_frames = options_.snapshot_ring_frames;
  if (ring_frames <= 1) {
    std::atomic_store_explicit(&published_, std::move(fresh),
                               std::memory_order_release);
    return;
  }
  // Republish the snapshot ring as a whole: a new vector sharing the
  // previous ring's frame pointers (cheap — K-1 shared_ptr copies),
  // so readers always see an immutable, internally consistent
  // history.
  const std::shared_ptr<const FrameRing> old = std::atomic_load_explicit(
      &published_ring_, std::memory_order_acquire);
  auto ring = std::make_shared<FrameRing>();
  ring->reserve(ring_frames);
  if (old != nullptr) {
    const size_t keep = std::min(old->size(), ring_frames - 1);
    ring->insert(ring->end(), old->end() - static_cast<ptrdiff_t>(keep),
                 old->end());
  }
  ring->push_back(std::move(fresh));
  std::atomic_store_explicit(&published_ring_,
                             std::shared_ptr<const FrameRing>(ring),
                             std::memory_order_release);
}

}  // namespace asap
